//! The compile daemon: accept loop, worker fan-out, request routing, the
//! single-flight compile path and service counters.
//!
//! One thread accepts connections and feeds them through a channel to N
//! worker jobs running on the existing [`hcg_exec`] work-stealing pool
//! (the same engine the evaluation fleet uses). Each worker loops:
//! receive a connection, read one request, route it, write one response,
//! close. Compiles are deduplicated twice — finished artifacts through the
//! sharded content-addressed cache, concurrent identical requests through
//! an in-flight single-flight table so C simultaneous clients asking for
//! the same `(model, options)` cost exactly one compile.

use crate::cache::{ArtifactProvider, DiskStore, MemoryStore, Outcome, ShardedCache};
use crate::http::{self, HttpError, Request, Response};
use crate::key::{CompileOptions, ContentKey};
use crate::telemetry::{
    format_trace_id, parse_trace_id, AccessLog, FlightRecorder, RequestRecord, ServeHists,
    TraceIdGen,
};
use hcg_core::emit::to_c_source;
use hcg_core::CompileSession;
use hcg_obs::{MetricsRegistry, TraceContext};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker jobs on the exec pool (0 = all cores).
    pub workers: usize,
    /// Artifact-cache shard count.
    pub shards: usize,
    /// Per-shard payload byte budget.
    pub shard_budget: usize,
    /// Front-end (session) cache capacity, in models.
    pub session_capacity: usize,
    /// When set, artifacts persist under this directory and the cache
    /// starts warm after a restart; `None` keeps everything in memory.
    pub disk_root: Option<PathBuf>,
    /// Record server-side latency/size histograms (on by default; the
    /// `obs-bench` harness turns it off to measure the overhead).
    pub record_histograms: bool,
    /// When set, append one JSONL line per completed request here.
    pub access_log: Option<PathBuf>,
    /// Seed for trace-id generation (`None` = time/pid derived). Seeded
    /// daemons assign a reproducible id sequence.
    pub trace_seed: Option<u64>,
    /// Flight-recorder capacity: how many completed requests
    /// `GET /debug/requests` retains.
    pub flight_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            shards: 8,
            shard_budget: 8 << 20,
            session_capacity: 256,
            disk_root: None,
            record_histograms: true,
            access_log: None,
            trace_seed: None,
            flight_capacity: 64,
        }
    }
}

macro_rules! serve_counters {
    ($(#[doc = $doc:literal] $field:ident => $metric:literal,)+) => {
        /// Service counters. The authoritative copy lives on the daemon
        /// instance (so tests with several daemons stay isolated); every
        /// bump is mirrored into [`MetricsRegistry::global`] under the
        /// same `serve.*` names.
        #[derive(Debug, Default)]
        pub struct ServeCounters {
            $(#[doc = $doc] pub $field: AtomicU64,)+
        }

        impl ServeCounters {
            fn bump(&self, field: &AtomicU64, name: &str) {
                field.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global().counter_add(name, 1);
            }

            $(fn $field(&self) {
                self.bump(&self.$field, $metric);
            })+

            /// Point-in-time copy as the shared report-telemetry schema.
            pub fn snapshot(&self) -> hcg_obs::MetricsSnapshot {
                let mut s = hcg_obs::MetricsSnapshot::new();
                $(s.set_counter($metric, self.$field.load(Ordering::Relaxed));)+
                s
            }
        }
    };
}

serve_counters! {
    /// Compile requests received (valid options; before cache lookup).
    requests => "serve.requests",
    /// Artifact-cache hits (positive and negative combined).
    hits => "serve.cache.hits",
    /// Artifact-cache misses (a compile or a join followed).
    misses => "serve.cache.misses",
    /// Compiles actually executed (single-flight leaders).
    compiles => "serve.compiles",
    /// Requests that joined another request's in-flight compile.
    joins => "serve.inflight.joins",
    /// Artifacts admitted into the cache.
    admitted => "serve.cache.admitted",
    /// Artifacts evicted to make room.
    evicted => "serve.cache.evicted",
    /// Failed compiles admitted as negative cache entries.
    negative_admitted => "serve.cache.negative_admitted",
    /// Cache hits that replayed a cached failure.
    negative_hits => "serve.cache.negative_hits",
    /// Front-end session cache hits (model already parsed + validated).
    session_hits => "serve.session.hits",
    /// Front-end session cache misses (model parsed this request).
    session_misses => "serve.session.misses",
    /// Sessions evicted from the front-end cache.
    session_evicted => "serve.session.evicted",
    /// Requests rejected before compiling (bad HTTP, bad options, 404s).
    http_errors => "serve.http.errors",
    /// `GET /metrics` scrapes served (JSON and Prometheus formats).
    metrics_scrapes => "serve.metrics_scrapes",
}

/// Count-capped LRU of parsed front ends, keyed by model bytes only so
/// every option combination over one model shares a session.
#[derive(Debug, Default)]
struct SessionCache {
    entries: Mutex<HashMap<ContentKey, (Arc<CompileSession>, u64)>>,
    clock: AtomicU64,
    capacity: usize,
}

impl SessionCache {
    fn new(capacity: usize) -> Self {
        SessionCache {
            entries: Mutex::default(),
            clock: AtomicU64::new(1),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: ContentKey) -> Option<Arc<CompileSession>> {
        let mut entries = self.entries.lock().expect("session cache poisoned");
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let (session, recency) = entries.get_mut(&key)?;
        *recency = stamp;
        Some(Arc::clone(session))
    }

    /// Insert, returning how many sessions were evicted to stay in cap.
    fn insert(&self, key: ContentKey, session: Arc<CompileSession>) -> usize {
        let mut entries = self.entries.lock().expect("session cache poisoned");
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        entries.insert(key, (session, stamp));
        let mut evicted = 0;
        while entries.len() > self.capacity {
            let victim = *entries
                .iter()
                .min_by_key(|(_, (_, recency))| *recency)
                .map(|(k, _)| k)
                .expect("over-capacity map is non-empty");
            entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    fn len(&self) -> usize {
        self.entries.lock().expect("session cache poisoned").len()
    }
}

/// One in-flight compile: followers block on the condvar until the leader
/// publishes the outcome.
#[derive(Debug, Default)]
struct Inflight {
    done: Mutex<Option<Outcome>>,
    cv: Condvar,
}

impl Inflight {
    fn publish(&self, outcome: Outcome) {
        *self.done.lock().expect("inflight poisoned") = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> Outcome {
        let mut done = self.done.lock().expect("inflight poisoned");
        loop {
            if let Some(outcome) = done.clone() {
                return outcome;
            }
            done = self.cv.wait(done).expect("inflight poisoned");
        }
    }
}

/// The daemon's observability side: histograms, trace ids, access log,
/// flight recorder. Grouped so the request path can thread one reference.
struct Telemetry {
    hists: Option<ServeHists>,
    access_log: Option<AccessLog>,
    recorder: FlightRecorder,
    trace_ids: TraceIdGen,
}

/// Shared daemon state.
struct ServeState {
    cache: Box<dyn ArtifactProvider>,
    sessions: SessionCache,
    inflight: Mutex<HashMap<ContentKey, Arc<Inflight>>>,
    counters: Arc<ServeCounters>,
    telemetry: Telemetry,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// One accepted connection in flight from the accept thread to a worker:
/// the stream plus the trace identity minted on accept, so the worker's
/// spans stitch under the accept thread's span as one tree.
struct Conn {
    stream: TcpStream,
    trace_id: u64,
    /// Accept-span id (0 while tracing is off) — the worker's parent.
    parent: u64,
    accepted: Instant,
}

/// Handle to a running daemon: its address, counters and lifecycle.
pub struct ServeHandle {
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The daemon's bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The daemon's counters (live; readable while serving).
    pub fn counters(&self) -> Arc<ServeCounters> {
        Arc::clone(&self.state.counters)
    }

    /// Live artifacts in the cache.
    pub fn cache_entries(&self) -> usize {
        self.state.cache.entries()
    }

    /// Payload bytes held by the cache.
    pub fn cache_bytes(&self) -> usize {
        self.state.cache.bytes()
    }

    /// Parsed sessions held by the front-end cache.
    pub fn session_entries(&self) -> usize {
        self.state.sessions.len()
    }

    /// Stop accepting, drain the workers and join every thread.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.state.addr);
        self.join();
    }

    /// Block until the daemon stops on its own (`POST /shutdown`).
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.supervisor.is_some() {
            self.state.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.state.addr);
            self.join();
        }
    }
}

/// Bind, spawn the accept loop and the worker pool, and return the handle.
///
/// # Errors
///
/// Returns the I/O error when the address cannot be bound or the disk
/// cache root cannot be created.
pub fn spawn(config: ServeConfig) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache: Box<dyn ArtifactProvider> = match &config.disk_root {
        Some(root) => Box::new(ShardedCache::new(
            config.shards,
            config.shard_budget,
            DiskStore::new(root)?,
        )),
        None => Box::new(ShardedCache::new(
            config.shards,
            config.shard_budget,
            MemoryStore,
        )),
    };
    let telemetry = Telemetry {
        hists: config.record_histograms.then(ServeHists::new),
        access_log: match &config.access_log {
            Some(path) => Some(AccessLog::open(path)?),
            None => None,
        },
        recorder: FlightRecorder::new(config.flight_capacity),
        trace_ids: TraceIdGen::new(config.trace_seed),
    };
    let state = Arc::new(ServeState {
        cache,
        sessions: SessionCache::new(config.session_capacity),
        inflight: Mutex::default(),
        counters: Arc::new(ServeCounters::default()),
        telemetry,
        shutdown: AtomicBool::new(false),
        addr,
    });

    let (tx, rx) = mpsc::channel::<Conn>();
    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Mint the request's trace identity here, so the queue wait
            // and the worker's whole request handling hang under one
            // accept span (span ids are 0 while tracing is off — the
            // trace id itself is always assigned, for the response
            // header and access log).
            let trace_id = accept_state.telemetry.trace_ids.next_id();
            let _scope = hcg_obs::trace_scope(TraceContext {
                trace_id,
                parent: 0,
            });
            let span = hcg_obs::span("serve", "accept");
            let conn = Conn {
                stream,
                trace_id,
                parent: span.id().unwrap_or(0),
                accepted: Instant::now(),
            };
            if tx.send(conn).is_err() {
                break;
            }
        }
        // Publish any spans still buffered on this thread before it
        // joins, so short-lived daemons export complete traces.
        hcg_obs::flush_thread();
        // Dropping `tx` here wakes every worker blocked on the channel.
    });

    let workers = hcg_exec::effective_threads(config.workers).max(1);
    let worker_state = Arc::clone(&state);
    let supervisor = std::thread::spawn(move || {
        let rx = Arc::new(Mutex::new(rx));
        let jobs: Vec<_> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&worker_state);
                move || {
                    loop {
                        // Hold the receiver lock only for the recv itself,
                        // so other workers pick up connections while this
                        // one compiles.
                        let next = rx.lock().expect("serve queue poisoned").recv();
                        match next {
                            Ok(conn) => handle_connection(&state, conn),
                            Err(_) => break,
                        }
                    }
                    // Lossless shutdown: publish this worker's buffered
                    // spans before the pool joins it.
                    hcg_obs::flush_thread();
                }
            })
            .collect();
        // Fan the worker loops out over the existing exec engine.
        hcg_exec::run_jobs(workers, jobs);
    });

    Ok(ServeHandle {
        state,
        accept: Some(accept),
        supervisor: Some(supervisor),
    })
}

/// Serve one connection: one request, one response, close. This is where
/// every per-request telemetry signal is emitted: queue/read/route stage
/// timings, the latency and size histograms, the `X-Trace-Id` response
/// header, the access-log line and the flight-recorder entry.
///
/// Telemetry is published *before* the response bytes go out: once a
/// client has read a response, the request is guaranteed to be visible
/// in `/metrics` and `/debug/requests`. (The latency histogram therefore
/// measures accept-to-response-ready, excluding the final write.)
fn handle_connection(state: &ServeState, conn: Conn) {
    let queue_us = conn.accepted.elapsed().as_micros() as u64;
    let mut reader = BufReader::new(match conn.stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = conn.stream;
    let read_start = Instant::now();
    let request = match http::read_request(&mut reader) {
        Ok(r) => r,
        Err(HttpError::Malformed(m)) => {
            state.counters.http_errors();
            let response =
                Response::text(400, m).with_header("X-Trace-Id", format_trace_id(conn.trace_id));
            let _ = http::write_response(&mut writer, &response);
            return;
        }
        // Shutdown wake-ups and dropped clients land here; nothing to say.
        Err(HttpError::Io(_)) => return,
    };
    let read_us = read_start.elapsed().as_micros() as u64;

    // Propagation: an inbound X-Trace-Id (16 hex digits) replaces the
    // accept-assigned id, so a caller's id follows the request through
    // this daemon's spans and logs.
    let trace_id = request
        .header("x-trace-id")
        .and_then(parse_trace_id)
        .unwrap_or(conn.trace_id);
    let _scope = hcg_obs::trace_scope(TraceContext {
        trace_id,
        parent: conn.parent,
    });
    let _req_span = hcg_obs::span("serve", "request");

    // Panic isolation: a route handler panic becomes a 500 (and a flight
    // recorder dump below), never a dead worker.
    let route_start = Instant::now();
    let response = match catch_unwind(AssertUnwindSafe(|| route(state, &request))) {
        Ok(response) => response,
        Err(payload) => {
            state.counters.http_errors();
            Response::text(
                500,
                format!("internal error: {}\n", panic_text(payload.as_ref())),
            )
        }
    };
    let route_us = route_start.elapsed().as_micros() as u64;
    let response = response.with_header("X-Trace-Id", format_trace_id(trace_id));
    let latency_us = conn.accepted.elapsed().as_micros() as u64;

    if let Some(hists) = &state.telemetry.hists {
        hists.queue_wait_us.record(queue_us);
        hists.request_bytes.record(request.body.len() as u64);
        hists.response_bytes.record(response.body.len() as u64);
        hists.request_latency_us.record(latency_us);
    }
    let header = |name: &str| {
        response
            .headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| "-".to_owned())
    };
    let record = RequestRecord {
        trace_id,
        method: request.method.clone(),
        path: request.path.clone(),
        key_prefix: header("X-Content-Key"),
        cache: header("X-Cache"),
        status: response.status,
        latency_us,
        stages: vec![("queue", queue_us), ("read", read_us), ("route", route_us)],
    };
    if let Some(log) = &state.telemetry.access_log {
        log.log(&record);
    }
    state.telemetry.recorder.record(record);
    if response.status >= 500 {
        // The black box: dump the recent-request ring (ending with the
        // failing request) so the failure is diagnosable after the fact.
        eprintln!(
            "hcg-serve: 5xx on trace {} — flight recorder: {}",
            format_trace_id(trace_id),
            state.telemetry.recorder.to_json()
        );
    }

    let _ = http::write_response(&mut writer, &response);
}

/// Render a panic payload (`&str`/`String` verbatim, placeholder else).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn route(state: &ServeState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/compile") => compile(state, request),
        ("GET", "/metrics") => metrics(state, request),
        ("GET", "/health") => Response::text(200, "ok\n"),
        ("GET", "/debug/requests") => Response::text(200, state.telemetry.recorder.to_json())
            .with_header("Cache-Control", "no-store"),
        // A deliberate failure point so the 500 path (panic isolation +
        // flight-recorder dump) stays testable end to end.
        ("POST", "/debug/panic") => panic!("deliberate panic requested via /debug/panic"),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.addr);
            Response::text(200, "shutting down\n")
        }
        ("POST" | "GET", _) => {
            state.counters.http_errors();
            Response::text(404, format!("no route for {}\n", request.path))
        }
        (method, _) => {
            state.counters.http_errors();
            Response::text(405, format!("method {method} not supported\n"))
        }
    }
}

/// `GET /metrics`: service counters, live cache gauges and the latency
/// histograms — JSON by default, Prometheus text with
/// `?format=prometheus`. Always `Cache-Control: no-store`: a scrape is a
/// point-in-time read that must never be served stale by an intermediary.
fn metrics(state: &ServeState, request: &Request) -> Response {
    state.counters.metrics_scrapes();
    let mut snapshot = state.counters.snapshot();
    snapshot.set_counter("serve.cache.entries", state.cache.entries() as u64);
    snapshot.set_counter("serve.cache.bytes", state.cache.bytes() as u64);
    snapshot.set_counter("serve.cache.shards", state.cache.shard_count() as u64);
    snapshot.set_counter("serve.session.entries", state.sessions.len() as u64);
    if let Some(hists) = &state.telemetry.hists {
        for (name, hist) in hists.named() {
            snapshot.set_histogram(name, hist.snapshot());
        }
    }
    let body = match request.query_param("format") {
        Some("prometheus") => hcg_obs::render_prometheus(&snapshot),
        _ => snapshot.to_json(),
    };
    Response::text(200, body).with_header("Cache-Control", "no-store")
}

/// `POST /compile`: cache lookup → single-flight dedup → compile.
fn compile(state: &ServeState, request: &Request) -> Response {
    let options = match CompileOptions::from_query(|k| request.query_param(k).map(str::to_owned)) {
        Ok(o) => o,
        Err(bad) => {
            state.counters.http_errors();
            return Response::text(400, format!("{bad}\n"));
        }
    };
    let key = options.artifact_key(&request.body);
    let _span = hcg_obs::span_with("serve", || {
        format!("compile/{}/{}", options.canonical(), key.hex())
    });
    state.counters.requests();

    if let Some(outcome) = state.cache.fetch(key) {
        state.counters.hits();
        if outcome.is_failure() {
            state.counters.negative_hits();
        }
        return respond(&outcome, "hit", key);
    }
    state.counters.misses();

    // Single-flight: first arrival leads the compile, the rest join.
    let (flight, leader) = {
        let mut inflight = state.inflight.lock().expect("inflight map poisoned");
        match inflight.get(&key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Inflight::default());
                inflight.insert(key, Arc::clone(&flight));
                (flight, true)
            }
        }
    };
    if !leader {
        state.counters.joins();
        let wait_start = Instant::now();
        let outcome = flight.wait();
        if let Some(hists) = &state.telemetry.hists {
            hists
                .flight_wait_us
                .record(wait_start.elapsed().as_micros() as u64);
        }
        return respond(&outcome, "join", key);
    }

    // Leadership recheck: between this request's cache miss and its
    // inflight registration, a previous leader may have admitted the very
    // artifact we are about to compile (its inflight entry is removed
    // only *after* admission, so by the time we could become leader the
    // cache is current). Serve that instead of recompiling.
    if let Some(outcome) = state.cache.fetch(key) {
        state.counters.hits();
        if outcome.is_failure() {
            state.counters.negative_hits();
        }
        flight.publish(outcome.clone());
        state
            .inflight
            .lock()
            .expect("inflight map poisoned")
            .remove(&key);
        return respond(&outcome, "hit", key);
    }

    let compile_start = Instant::now();
    let outcome = run_compile(state, &options, &request.body);
    if let Some(hists) = &state.telemetry.hists {
        hists
            .compile_latency_us
            .record(compile_start.elapsed().as_micros() as u64);
    }
    let report = state.cache.admit(key, outcome.clone());
    if report.admitted {
        state.counters.admitted();
        if outcome.is_failure() {
            state.counters.negative_admitted();
        }
    }
    for _ in 0..report.evicted {
        state.counters.evicted();
    }
    flight.publish(outcome.clone());
    state
        .inflight
        .lock()
        .expect("inflight map poisoned")
        .remove(&key);
    respond(&outcome, "miss", key)
}

/// Execute one compile through the shared front-end session cache.
fn run_compile(state: &ServeState, options: &CompileOptions, model_bytes: &[u8]) -> Outcome {
    state.counters.compiles();
    let session_key = CompileOptions::session_key(model_bytes);
    let session = match state.sessions.get(session_key) {
        Some(s) => {
            state.counters.session_hits();
            s
        }
        None => {
            state.counters.session_misses();
            let Ok(text) = std::str::from_utf8(model_bytes) else {
                return Outcome::Failure(Arc::new("model body is not valid UTF-8".to_owned()));
            };
            let model = match hcg_model::parser::model_from_xml(text) {
                Ok(m) => m,
                Err(e) => return Outcome::Failure(Arc::new(format!("model parse failed: {e}"))),
            };
            let session = Arc::new(CompileSession::new(model));
            for _ in 0..state.sessions.insert(session_key, Arc::clone(&session)) {
                state.counters.session_evicted();
            }
            session
        }
    };
    let generator = options.build_generator();
    match session.generate(generator.as_ref(), options.arch) {
        Ok(program) => Outcome::Success(Arc::new(to_c_source(&program))),
        Err(e) => Outcome::Failure(Arc::new(format!("compile failed: {e}"))),
    }
}

fn respond(outcome: &Outcome, cache_status: &str, key: ContentKey) -> Response {
    let status = if outcome.is_failure() { 422 } else { 200 };
    Response::text(status, outcome.text())
        .with_header("X-Cache", cache_status)
        // The first 16 hex digits are plenty to find the artifact (the
        // access log and flight recorder key requests by this prefix).
        .with_header("X-Content-Key", &key.hex()[..16])
}
