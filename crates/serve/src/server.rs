//! The compile daemon: accept loop, worker fan-out, request routing, the
//! single-flight compile path and service counters.
//!
//! One thread accepts connections and feeds them through a channel to N
//! worker jobs running on the existing [`hcg_exec`] work-stealing pool
//! (the same engine the evaluation fleet uses). Each worker loops:
//! receive a connection, read one request, route it, write one response,
//! close. Compiles are deduplicated twice — finished artifacts through the
//! sharded content-addressed cache, concurrent identical requests through
//! an in-flight single-flight table so C simultaneous clients asking for
//! the same `(model, options)` cost exactly one compile.

use crate::cache::{ArtifactProvider, DiskStore, MemoryStore, Outcome, ShardedCache};
use crate::http::{self, HttpError, Request, Response};
use crate::key::{CompileOptions, ContentKey};
use hcg_core::emit::to_c_source;
use hcg_core::CompileSession;
use hcg_obs::MetricsRegistry;
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker jobs on the exec pool (0 = all cores).
    pub workers: usize,
    /// Artifact-cache shard count.
    pub shards: usize,
    /// Per-shard payload byte budget.
    pub shard_budget: usize,
    /// Front-end (session) cache capacity, in models.
    pub session_capacity: usize,
    /// When set, artifacts persist under this directory and the cache
    /// starts warm after a restart; `None` keeps everything in memory.
    pub disk_root: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            shards: 8,
            shard_budget: 8 << 20,
            session_capacity: 256,
            disk_root: None,
        }
    }
}

macro_rules! serve_counters {
    ($(#[doc = $doc:literal] $field:ident => $metric:literal,)+) => {
        /// Service counters. The authoritative copy lives on the daemon
        /// instance (so tests with several daemons stay isolated); every
        /// bump is mirrored into [`MetricsRegistry::global`] under the
        /// same `serve.*` names.
        #[derive(Debug, Default)]
        pub struct ServeCounters {
            $(#[doc = $doc] pub $field: AtomicU64,)+
        }

        impl ServeCounters {
            fn bump(&self, field: &AtomicU64, name: &str) {
                field.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global().counter_add(name, 1);
            }

            $(fn $field(&self) {
                self.bump(&self.$field, $metric);
            })+

            /// Point-in-time copy as the shared report-telemetry schema.
            pub fn snapshot(&self) -> hcg_obs::MetricsSnapshot {
                let mut s = hcg_obs::MetricsSnapshot::new();
                $(s.set_counter($metric, self.$field.load(Ordering::Relaxed));)+
                s
            }
        }
    };
}

serve_counters! {
    /// Compile requests received (valid options; before cache lookup).
    requests => "serve.requests",
    /// Artifact-cache hits (positive and negative combined).
    hits => "serve.cache.hits",
    /// Artifact-cache misses (a compile or a join followed).
    misses => "serve.cache.misses",
    /// Compiles actually executed (single-flight leaders).
    compiles => "serve.compiles",
    /// Requests that joined another request's in-flight compile.
    joins => "serve.inflight.joins",
    /// Artifacts admitted into the cache.
    admitted => "serve.cache.admitted",
    /// Artifacts evicted to make room.
    evicted => "serve.cache.evicted",
    /// Failed compiles admitted as negative cache entries.
    negative_admitted => "serve.cache.negative_admitted",
    /// Cache hits that replayed a cached failure.
    negative_hits => "serve.cache.negative_hits",
    /// Front-end session cache hits (model already parsed + validated).
    session_hits => "serve.session.hits",
    /// Front-end session cache misses (model parsed this request).
    session_misses => "serve.session.misses",
    /// Sessions evicted from the front-end cache.
    session_evicted => "serve.session.evicted",
    /// Requests rejected before compiling (bad HTTP, bad options, 404s).
    http_errors => "serve.http.errors",
}

/// Count-capped LRU of parsed front ends, keyed by model bytes only so
/// every option combination over one model shares a session.
#[derive(Debug, Default)]
struct SessionCache {
    entries: Mutex<HashMap<ContentKey, (Arc<CompileSession>, u64)>>,
    clock: AtomicU64,
    capacity: usize,
}

impl SessionCache {
    fn new(capacity: usize) -> Self {
        SessionCache {
            entries: Mutex::default(),
            clock: AtomicU64::new(1),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: ContentKey) -> Option<Arc<CompileSession>> {
        let mut entries = self.entries.lock().expect("session cache poisoned");
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let (session, recency) = entries.get_mut(&key)?;
        *recency = stamp;
        Some(Arc::clone(session))
    }

    /// Insert, returning how many sessions were evicted to stay in cap.
    fn insert(&self, key: ContentKey, session: Arc<CompileSession>) -> usize {
        let mut entries = self.entries.lock().expect("session cache poisoned");
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        entries.insert(key, (session, stamp));
        let mut evicted = 0;
        while entries.len() > self.capacity {
            let victim = *entries
                .iter()
                .min_by_key(|(_, (_, recency))| *recency)
                .map(|(k, _)| k)
                .expect("over-capacity map is non-empty");
            entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    fn len(&self) -> usize {
        self.entries.lock().expect("session cache poisoned").len()
    }
}

/// One in-flight compile: followers block on the condvar until the leader
/// publishes the outcome.
#[derive(Debug, Default)]
struct Inflight {
    done: Mutex<Option<Outcome>>,
    cv: Condvar,
}

impl Inflight {
    fn publish(&self, outcome: Outcome) {
        *self.done.lock().expect("inflight poisoned") = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> Outcome {
        let mut done = self.done.lock().expect("inflight poisoned");
        loop {
            if let Some(outcome) = done.clone() {
                return outcome;
            }
            done = self.cv.wait(done).expect("inflight poisoned");
        }
    }
}

/// Shared daemon state.
struct ServeState {
    cache: Box<dyn ArtifactProvider>,
    sessions: SessionCache,
    inflight: Mutex<HashMap<ContentKey, Arc<Inflight>>>,
    counters: Arc<ServeCounters>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// Handle to a running daemon: its address, counters and lifecycle.
pub struct ServeHandle {
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The daemon's bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The daemon's counters (live; readable while serving).
    pub fn counters(&self) -> Arc<ServeCounters> {
        Arc::clone(&self.state.counters)
    }

    /// Live artifacts in the cache.
    pub fn cache_entries(&self) -> usize {
        self.state.cache.entries()
    }

    /// Payload bytes held by the cache.
    pub fn cache_bytes(&self) -> usize {
        self.state.cache.bytes()
    }

    /// Parsed sessions held by the front-end cache.
    pub fn session_entries(&self) -> usize {
        self.state.sessions.len()
    }

    /// Stop accepting, drain the workers and join every thread.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.state.addr);
        self.join();
    }

    /// Block until the daemon stops on its own (`POST /shutdown`).
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.supervisor.is_some() {
            self.state.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.state.addr);
            self.join();
        }
    }
}

/// Bind, spawn the accept loop and the worker pool, and return the handle.
///
/// # Errors
///
/// Returns the I/O error when the address cannot be bound or the disk
/// cache root cannot be created.
pub fn spawn(config: ServeConfig) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache: Box<dyn ArtifactProvider> = match &config.disk_root {
        Some(root) => Box::new(ShardedCache::new(
            config.shards,
            config.shard_budget,
            DiskStore::new(root)?,
        )),
        None => Box::new(ShardedCache::new(
            config.shards,
            config.shard_budget,
            MemoryStore,
        )),
    };
    let state = Arc::new(ServeState {
        cache,
        sessions: SessionCache::new(config.session_capacity),
        inflight: Mutex::default(),
        counters: Arc::new(ServeCounters::default()),
        shutdown: AtomicBool::new(false),
        addr,
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || {
        let _span = hcg_obs::span_with("serve", || format!("accept/{addr}"));
        for stream in listener.incoming() {
            if accept_state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if tx.send(stream).is_err() {
                break;
            }
        }
        // Dropping `tx` here wakes every worker blocked on the channel.
    });

    let workers = hcg_exec::effective_threads(config.workers).max(1);
    let worker_state = Arc::clone(&state);
    let supervisor = std::thread::spawn(move || {
        let rx = Arc::new(Mutex::new(rx));
        let jobs: Vec<_> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&worker_state);
                move || {
                    loop {
                        // Hold the receiver lock only for the recv itself,
                        // so other workers pick up connections while this
                        // one compiles.
                        let next = rx.lock().expect("serve queue poisoned").recv();
                        match next {
                            Ok(stream) => handle_connection(&state, stream),
                            Err(_) => break,
                        }
                    }
                }
            })
            .collect();
        // Fan the worker loops out over the existing exec engine.
        hcg_exec::run_jobs(workers, jobs);
    });

    Ok(ServeHandle {
        state,
        accept: Some(accept),
        supervisor: Some(supervisor),
    })
}

/// Serve one connection: one request, one response, close.
fn handle_connection(state: &ServeState, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let request = match http::read_request(&mut reader) {
        Ok(r) => r,
        Err(HttpError::Malformed(m)) => {
            state.counters.http_errors();
            let _ = http::write_response(&mut writer, &Response::text(400, m));
            return;
        }
        // Shutdown wake-ups and dropped clients land here; nothing to say.
        Err(HttpError::Io(_)) => return,
    };
    let response = route(state, &request);
    let _ = http::write_response(&mut writer, &response);
}

fn route(state: &ServeState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/compile") => compile(state, request),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/health") => Response::text(200, "ok\n"),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.addr);
            Response::text(200, "shutting down\n")
        }
        ("POST" | "GET", _) => {
            state.counters.http_errors();
            Response::text(404, format!("no route for {}\n", request.path))
        }
        (method, _) => {
            state.counters.http_errors();
            Response::text(405, format!("method {method} not supported\n"))
        }
    }
}

/// `GET /metrics`: service counters plus live cache gauges, as JSON.
fn metrics(state: &ServeState) -> Response {
    let mut snapshot = state.counters.snapshot();
    snapshot.set_counter("serve.cache.entries", state.cache.entries() as u64);
    snapshot.set_counter("serve.cache.bytes", state.cache.bytes() as u64);
    snapshot.set_counter("serve.cache.shards", state.cache.shard_count() as u64);
    snapshot.set_counter("serve.session.entries", state.sessions.len() as u64);
    Response::text(200, snapshot.to_json())
}

/// `POST /compile`: cache lookup → single-flight dedup → compile.
fn compile(state: &ServeState, request: &Request) -> Response {
    let options = match CompileOptions::from_query(|k| request.query_param(k).map(str::to_owned)) {
        Ok(o) => o,
        Err(bad) => {
            state.counters.http_errors();
            return Response::text(400, format!("{bad}\n"));
        }
    };
    let key = options.artifact_key(&request.body);
    let _span = hcg_obs::span_with("serve", || {
        format!("compile/{}/{}", options.canonical(), key.hex())
    });
    state.counters.requests();

    if let Some(outcome) = state.cache.fetch(key) {
        state.counters.hits();
        if outcome.is_failure() {
            state.counters.negative_hits();
        }
        return respond(&outcome, "hit");
    }
    state.counters.misses();

    // Single-flight: first arrival leads the compile, the rest join.
    let (flight, leader) = {
        let mut inflight = state.inflight.lock().expect("inflight map poisoned");
        match inflight.get(&key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Inflight::default());
                inflight.insert(key, Arc::clone(&flight));
                (flight, true)
            }
        }
    };
    if !leader {
        state.counters.joins();
        return respond(&flight.wait(), "join");
    }

    // Leadership recheck: between this request's cache miss and its
    // inflight registration, a previous leader may have admitted the very
    // artifact we are about to compile (its inflight entry is removed
    // only *after* admission, so by the time we could become leader the
    // cache is current). Serve that instead of recompiling.
    if let Some(outcome) = state.cache.fetch(key) {
        state.counters.hits();
        if outcome.is_failure() {
            state.counters.negative_hits();
        }
        flight.publish(outcome.clone());
        state
            .inflight
            .lock()
            .expect("inflight map poisoned")
            .remove(&key);
        return respond(&outcome, "hit");
    }

    let outcome = run_compile(state, &options, &request.body);
    let report = state.cache.admit(key, outcome.clone());
    if report.admitted {
        state.counters.admitted();
        if outcome.is_failure() {
            state.counters.negative_admitted();
        }
    }
    for _ in 0..report.evicted {
        state.counters.evicted();
    }
    flight.publish(outcome.clone());
    state
        .inflight
        .lock()
        .expect("inflight map poisoned")
        .remove(&key);
    respond(&outcome, "miss")
}

/// Execute one compile through the shared front-end session cache.
fn run_compile(state: &ServeState, options: &CompileOptions, model_bytes: &[u8]) -> Outcome {
    state.counters.compiles();
    let session_key = CompileOptions::session_key(model_bytes);
    let session = match state.sessions.get(session_key) {
        Some(s) => {
            state.counters.session_hits();
            s
        }
        None => {
            state.counters.session_misses();
            let Ok(text) = std::str::from_utf8(model_bytes) else {
                return Outcome::Failure(Arc::new("model body is not valid UTF-8".to_owned()));
            };
            let model = match hcg_model::parser::model_from_xml(text) {
                Ok(m) => m,
                Err(e) => return Outcome::Failure(Arc::new(format!("model parse failed: {e}"))),
            };
            let session = Arc::new(CompileSession::new(model));
            for _ in 0..state.sessions.insert(session_key, Arc::clone(&session)) {
                state.counters.session_evicted();
            }
            session
        }
    };
    let generator = options.build_generator();
    match session.generate(generator.as_ref(), options.arch) {
        Ok(program) => Outcome::Success(Arc::new(to_c_source(&program))),
        Err(e) => Outcome::Failure(Arc::new(format!("compile failed: {e}"))),
    }
}

fn respond(outcome: &Outcome, cache_status: &str) -> Response {
    let status = if outcome.is_failure() { 422 } else { 200 };
    Response::text(status, outcome.text()).with_header("X-Cache", cache_status)
}
