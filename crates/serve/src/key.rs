//! Content addressing for the compile service.
//!
//! Every cacheable artifact is keyed by a [`ContentKey`]: a 128-bit hash
//! (two independent 64-bit FNV-1a streams) over the canonical compile
//! options and the raw model bytes. Equal requests — same model bytes,
//! same options — always produce the same key; the front-end (session)
//! cache uses a model-bytes-only key so every option combination over one
//! model shares a single parsed/validated front end.

use hcg_core::{HcgGen, HcgOptions, MappingStrategy};
use hcg_isa::Arch;
use std::str::FromStr;

/// FNV-1a offset basis (the standard one).
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent offset so the two streams decorrelate.
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 128-bit content hash identifying one `(options, model bytes)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey {
    /// High word (first FNV stream); selects the cache shard.
    pub hi: u64,
    /// Low word (second FNV stream).
    pub lo: u64,
}

impl ContentKey {
    /// Hash `parts` into a key. Each part is length-prefixed into the
    /// streams so `["ab", "c"]` and `["a", "bc"]` produce different keys.
    pub fn of_parts(parts: &[&[u8]]) -> Self {
        let mut hi = FNV_OFFSET_A;
        let mut lo = FNV_OFFSET_B;
        let mut step = |byte: u8| {
            hi = (hi ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            lo = (lo ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        };
        for part in parts {
            for byte in (part.len() as u64).to_le_bytes() {
                step(byte);
            }
            for &byte in *part {
                step(byte);
            }
        }
        ContentKey { hi, lo }
    }

    /// The shard index for this key among `shards` shards (from the high
    /// word, independent of the low word used for collision resistance).
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        (self.hi % shards as u64) as usize
    }

    /// 32-hex-digit rendering (stable; used as the on-disk file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Compile options extracted from a request's query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Generator name: `hcg`, `simulink-coder` or `dfsynth`.
    pub generator: String,
    /// Target architecture.
    pub arch: Arch,
    /// Region-mapping strategy (HCG only; baselines ignore it).
    pub mapping: MappingStrategy,
}

/// A query string that does not describe a valid compile configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadOptions(pub String);

impl std::fmt::Display for BadOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad compile options: {}", self.0)
    }
}

impl std::error::Error for BadOptions {}

impl CompileOptions {
    /// Parse options from query parameters: `generator=` (default `hcg`),
    /// `arch=` (default `neon128`), `beam=` (HCG beam width; absent or
    /// `0`/`1` means greedy).
    ///
    /// # Errors
    ///
    /// Returns [`BadOptions`] naming the offending parameter.
    pub fn from_query(param: impl Fn(&str) -> Option<String>) -> Result<Self, BadOptions> {
        let generator = param("generator").unwrap_or_else(|| "hcg".to_owned());
        match generator.as_str() {
            "hcg" | "simulink-coder" | "dfsynth" => {}
            other => return Err(BadOptions(format!("unknown generator {other:?}"))),
        }
        let arch_text = param("arch").unwrap_or_else(|| "neon128".to_owned());
        let arch = Arch::from_str(&arch_text)
            .map_err(|_| BadOptions(format!("unknown arch {arch_text:?}")))?;
        let mapping = match param("beam") {
            None => MappingStrategy::Greedy,
            Some(text) => {
                let width: usize = text
                    .parse()
                    .map_err(|_| BadOptions(format!("non-numeric beam width {text:?}")))?;
                if width <= 1 {
                    MappingStrategy::Greedy
                } else {
                    MappingStrategy::Beam { width }
                }
            }
        };
        Ok(CompileOptions {
            generator,
            arch,
            mapping,
        })
    }

    /// The canonical text form hashed into cache keys. Defaults and
    /// explicit parameters render identically (`beam=1` ≡ no `beam`), so
    /// equivalent requests share cache entries.
    pub fn canonical(&self) -> String {
        format!(
            "{}|{}|{}",
            self.generator,
            self.arch.name(),
            self.mapping.label()
        )
    }

    /// The artifact key for these options over `model_bytes`.
    pub fn artifact_key(&self, model_bytes: &[u8]) -> ContentKey {
        ContentKey::of_parts(&[self.canonical().as_bytes(), model_bytes])
    }

    /// The front-end (session) key: model bytes only, shared by every
    /// option combination over the same model.
    pub fn session_key(model_bytes: &[u8]) -> ContentKey {
        ContentKey::of_parts(&[b"session", model_bytes])
    }

    /// Construct the configured generator.
    pub fn build_generator(&self) -> Box<dyn hcg_core::CodeGenerator> {
        match self.generator.as_str() {
            "simulink-coder" => Box::new(hcg_baselines::SimulinkCoderGen::new()),
            "dfsynth" => Box::new(hcg_baselines::DfSynthGen::new()),
            _ => Box::new(HcgGen::with_options(HcgOptions {
                mapping: self.mapping,
                ..HcgOptions::default()
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn opts(query: &[(&str, &str)]) -> Result<CompileOptions, BadOptions> {
        let map: HashMap<String, String> = query
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        CompileOptions::from_query(|k| map.get(k).cloned())
    }

    #[test]
    fn keys_are_deterministic_and_content_sensitive() {
        let a = ContentKey::of_parts(&[b"hcg|neon128|greedy", b"<model/>"]);
        let b = ContentKey::of_parts(&[b"hcg|neon128|greedy", b"<model/>"]);
        assert_eq!(a, b);
        // Different model bytes, different options → different keys.
        assert_ne!(a, ContentKey::of_parts(&[b"hcg|neon128|greedy", b"<m/>"]));
        assert_ne!(
            a,
            ContentKey::of_parts(&[b"hcg|avx256|greedy", b"<model/>"])
        );
        // Length-prefixing: moving a byte across the part boundary changes
        // the key.
        assert_ne!(
            ContentKey::of_parts(&[b"ab", b"c"]),
            ContentKey::of_parts(&[b"a", b"bc"])
        );
        assert_eq!(a.hex().len(), 32);
        assert!(a.shard(8) < 8);
    }

    #[test]
    fn default_options_parse_and_canonicalize() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.generator, "hcg");
        assert_eq!(o.arch, Arch::Neon128);
        assert_eq!(o.mapping, MappingStrategy::Greedy);
        assert_eq!(o.canonical(), "hcg|neon128|greedy");
    }

    #[test]
    fn explicit_options_parse() {
        let o = opts(&[
            ("generator", "simulink-coder"),
            ("arch", "avx256"),
            ("beam", "4"),
        ])
        .unwrap();
        assert_eq!(o.generator, "simulink-coder");
        assert_eq!(o.arch, Arch::Avx256);
        // Baselines carry the mapping label for key purposes even though
        // they ignore it during generation.
        assert_eq!(o.mapping, MappingStrategy::Beam { width: 4 });
        assert_eq!(o.canonical(), "simulink-coder|avx256|beam4");
    }

    #[test]
    fn beam_one_is_greedy_so_keys_coincide() {
        let implicit = opts(&[]).unwrap();
        let explicit = opts(&[("beam", "1")]).unwrap();
        assert_eq!(implicit.canonical(), explicit.canonical());
        assert_eq!(
            implicit.artifact_key(b"<m/>"),
            explicit.artifact_key(b"<m/>")
        );
    }

    #[test]
    fn bad_options_are_rejected_with_the_parameter_named() {
        assert!(opts(&[("generator", "gcc")])
            .unwrap_err()
            .0
            .contains("generator"));
        assert!(opts(&[("arch", "mips")]).unwrap_err().0.contains("arch"));
        assert!(opts(&[("beam", "wide")]).unwrap_err().0.contains("beam"));
    }

    #[test]
    fn session_key_ignores_options() {
        assert_eq!(
            CompileOptions::session_key(b"<m/>"),
            CompileOptions::session_key(b"<m/>")
        );
        assert_ne!(
            CompileOptions::session_key(b"<m/>"),
            opts(&[]).unwrap().artifact_key(b"<m/>")
        );
    }

    #[test]
    fn generators_construct_for_every_name() {
        for gen in ["hcg", "simulink-coder", "dfsynth"] {
            let o = opts(&[("generator", gen)]).unwrap();
            assert_eq!(o.build_generator().name(), gen);
        }
    }
}
