//! A minimal blocking client for the daemon's HTTP subset — enough for
//! the test suite, the CI smoke and the `serve-bench` load generator to
//! talk to a daemon without external dependencies.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body (read to connection close).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of the named header (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Send one request and read the full response.
///
/// # Errors
///
/// Returns the transport error, or [`io::ErrorKind::InvalidData`] when the
/// response status line cannot be parsed.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<ClientResponse> {
    request_with_headers(addr, method, target, &[], body)
}

/// [`request`] with extra request headers (e.g. `X-Trace-Id` for trace
/// propagation).
///
/// # Errors
///
/// Returns the transport error, or [`io::ErrorKind::InvalidData`] when the
/// response status line cannot be parsed.
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }

    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// POST a model to `/compile` with a pre-rendered query string
/// (e.g. `"generator=hcg&arch=neon128"`; empty for defaults).
///
/// # Errors
///
/// Returns the transport error from [`request`].
pub fn compile(addr: SocketAddr, query: &str, model_xml: &[u8]) -> io::Result<ClientResponse> {
    let target = if query.is_empty() {
        "/compile".to_owned()
    } else {
        format!("/compile?{query}")
    };
    request(addr, "POST", &target, model_xml)
}
