//! Observability-level service tests: trace-id assignment and
//! propagation, cross-thread span stitching, Prometheus exposition,
//! the flight recorder (including the 5xx dump path), the access log
//! and span losslessness across shutdown.

use hcg_fuzz::{generate_model, GenConfig};
use hcg_model::parser::model_to_xml;
use hcg_serve::{client, spawn, ServeConfig};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Tests that flip the process-global tracing flag serialize on this.
static TRACING_LOCK: Mutex<()> = Mutex::new(());

fn model_xml(seed: u64) -> String {
    model_to_xml(&generate_model(seed, &GenConfig::default()))
}

#[test]
fn responses_carry_a_trace_id_and_adopt_inbound_ones() {
    let handle = spawn(ServeConfig {
        trace_seed: Some(7),
        ..ServeConfig::default()
    })
    .unwrap();
    let xml = model_xml(3);

    // Server-assigned: 16 hex digits, distinct per request.
    let a = client::compile(handle.addr(), "", xml.as_bytes()).unwrap();
    let b = client::request(handle.addr(), "GET", "/health", b"").unwrap();
    let id_a = a.header("x-trace-id").expect("assigned").to_owned();
    let id_b = b.header("x-trace-id").expect("assigned").to_owned();
    assert_eq!(id_a.len(), 16);
    assert!(id_a.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(id_a, id_b);

    // Propagation: an inbound id is echoed back verbatim.
    let inbound = "00000000deadbeef";
    let c = client::request_with_headers(
        handle.addr(),
        "POST",
        "/compile",
        &[("X-Trace-Id", inbound)],
        xml.as_bytes(),
    )
    .unwrap();
    assert_eq!(c.header("x-trace-id"), Some(inbound));

    // A malformed inbound id falls back to a server-assigned one.
    let d = client::request_with_headers(
        handle.addr(),
        "GET",
        "/health",
        &[("X-Trace-Id", "not-a-trace-id")],
        b"",
    )
    .unwrap();
    let id_d = d.header("x-trace-id").unwrap();
    assert_ne!(id_d, "not-a-trace-id");
    assert_eq!(id_d.len(), 16);
    handle.shutdown();
}

#[test]
fn seeded_daemons_assign_reproducible_trace_ids() {
    let first_ids: Vec<String> = {
        let handle = spawn(ServeConfig {
            trace_seed: Some(99),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let ids = (0..3)
            .map(|_| {
                client::request(handle.addr(), "GET", "/health", b"")
                    .unwrap()
                    .header("x-trace-id")
                    .unwrap()
                    .to_owned()
            })
            .collect();
        handle.shutdown();
        ids
    };
    let handle = spawn(ServeConfig {
        trace_seed: Some(99),
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let second_ids: Vec<String> = (0..3)
        .map(|_| {
            client::request(handle.addr(), "GET", "/health", b"")
                .unwrap()
                .header("x-trace-id")
                .unwrap()
                .to_owned()
        })
        .collect();
    handle.shutdown();
    assert_eq!(first_ids, second_ids, "same seed, same id sequence");
}

#[test]
fn one_request_spans_form_a_single_tree_across_threads() {
    let _guard = TRACING_LOCK.lock().unwrap();
    hcg_obs::clear_events();
    hcg_obs::set_tracing(true);
    let handle = spawn(ServeConfig {
        trace_seed: Some(5),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let xml = model_xml(11);
    let resp = client::compile(handle.addr(), "arch=neon128", xml.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    let trace_id =
        u64::from_str_radix(resp.header("x-trace-id").unwrap(), 16).expect("hex trace id");
    handle.shutdown();
    hcg_obs::set_tracing(false);

    let events = hcg_obs::take_events();
    let ours: Vec<_> = events.iter().filter(|e| e.trace_id == trace_id).collect();
    assert!(
        ours.len() >= 2,
        "expected accept + request spans at least, got {ours:?}"
    );

    // Exactly one root, and every other span's parent is inside the set:
    // a single tree.
    let ids: BTreeSet<u64> = ours.iter().map(|e| e.id).collect();
    let roots: Vec<_> = ours.iter().filter(|e| e.parent == 0).collect();
    assert_eq!(roots.len(), 1, "one tree root, got {roots:?}");
    assert_eq!(
        roots[0].name, "accept",
        "the tree is rooted on the accept thread"
    );
    for e in &ours {
        if e.parent != 0 {
            assert!(
                ids.contains(&e.parent),
                "span {:?} parents outside the trace ({:x})",
                e.name,
                e.parent
            );
        }
    }

    // The tree spans threads: accept thread + worker thread.
    let tids: BTreeSet<u64> = ours.iter().map(|e| e.tid).collect();
    assert!(
        tids.len() >= 2,
        "spans must cross accept/queue/worker threads, saw tids {tids:?}"
    );
    assert!(
        ours.iter().any(|e| e.name == "request"),
        "worker-side request span missing"
    );
    assert!(
        ours.iter().any(|e| e.name.starts_with("compile/")),
        "compile span missing from the tree"
    );
}

#[test]
fn no_spans_are_lost_across_pool_shutdown() {
    let _guard = TRACING_LOCK.lock().unwrap();
    hcg_obs::clear_events();
    hcg_obs::set_tracing(true);
    const REQUESTS: usize = 6;
    let trace_ids: Vec<u64> = {
        let handle = spawn(ServeConfig {
            trace_seed: Some(13),
            workers: 3,
            ..ServeConfig::default()
        })
        .unwrap();
        let ids = (0..REQUESTS)
            .map(|_| {
                let resp = client::request(handle.addr(), "GET", "/health", b"").unwrap();
                u64::from_str_radix(resp.header("x-trace-id").unwrap(), 16).unwrap()
            })
            .collect();
        // Shutdown must flush every worker's buffered spans before
        // returning — the drain below runs immediately after.
        handle.shutdown();
        ids
    };
    hcg_obs::set_tracing(false);
    let events = hcg_obs::take_events();
    for trace_id in trace_ids {
        let count = events
            .iter()
            .filter(|e| e.trace_id == trace_id && e.name == "request")
            .count();
        assert_eq!(
            count, 1,
            "request span for trace {trace_id:x} lost across shutdown"
        );
    }
}

#[test]
fn metrics_scrape_in_prometheus_format_parses_cleanly() {
    let handle = spawn(ServeConfig::default()).unwrap();
    let xml = model_xml(17);
    client::compile(handle.addr(), "", xml.as_bytes()).unwrap();
    client::compile(handle.addr(), "", xml.as_bytes()).unwrap();

    let json = client::request(handle.addr(), "GET", "/metrics", b"").unwrap();
    assert_eq!(json.status, 200);
    assert_eq!(json.header("cache-control"), Some("no-store"));
    hcg_obs::json::validate(&json.text()).expect("default format stays JSON");
    assert!(json.text().contains("\"serve.request_latency_us\""));
    assert!(json.text().contains("\"serve.metrics_scrapes\""));

    let prom = client::request(handle.addr(), "GET", "/metrics?format=prometheus", b"").unwrap();
    assert_eq!(prom.status, 200);
    assert_eq!(prom.header("cache-control"), Some("no-store"));
    let text = prom.text();
    let doc = hcg_obs::prometheus::parse(&text).expect("prometheus exposition parses");
    assert!(doc.value("serve_requests").unwrap() >= 2.0);
    assert_eq!(
        doc.types
            .get("serve_request_latency_us")
            .map(String::as_str),
        Some("histogram"),
        "latency histogram exposed"
    );
    assert!(
        doc.value("serve_request_latency_us_count").unwrap() >= 2.0,
        "both compile requests recorded"
    );
    assert!(doc.value("serve_compile_latency_us_count").unwrap() >= 1.0);
    // The scrape counter observes scrapes themselves (this is the second).
    assert!(doc.value("serve_metrics_scrapes").unwrap() >= 2.0);
    handle.shutdown();
}

#[test]
fn histograms_can_be_disabled() {
    let handle = spawn(ServeConfig {
        record_histograms: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let xml = model_xml(23);
    client::compile(handle.addr(), "", xml.as_bytes()).unwrap();
    let metrics = client::request(handle.addr(), "GET", "/metrics", b"").unwrap();
    assert!(
        !metrics.text().contains("serve.request_latency_us"),
        "no histograms when disabled"
    );
    handle.shutdown();
}

#[test]
fn flight_recorder_retains_requests_and_survives_a_5xx() {
    let handle = spawn(ServeConfig {
        flight_capacity: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let xml = model_xml(29);
    let miss = client::compile(handle.addr(), "", xml.as_bytes()).unwrap();
    let hit = client::compile(handle.addr(), "", xml.as_bytes()).unwrap();
    assert_eq!(miss.header("x-cache"), Some("miss"));
    assert_eq!(hit.header("x-cache"), Some("hit"));
    let key_prefix = miss.header("x-content-key").expect("key prefix header");
    assert_eq!(key_prefix.len(), 16);

    let debug = client::request(handle.addr(), "GET", "/debug/requests", b"").unwrap();
    assert_eq!(debug.status, 200);
    let text = debug.text();
    hcg_obs::json::validate(&text).expect("flight recorder serves valid JSON");
    assert!(text.contains(&format!("\"key\": \"{key_prefix}\"")));
    assert!(text.contains("\"cache\": \"miss\""));
    assert!(text.contains("\"cache\": \"hit\""));
    assert!(text.contains("\"stage\": \"queue\""));
    assert!(text.contains("\"stage\": \"route\""));

    // A route panic becomes a 500 (worker survives) and the failing
    // request lands in the recorder.
    let boom = client::request(handle.addr(), "POST", "/debug/panic", b"").unwrap();
    assert_eq!(boom.status, 500);
    assert!(boom.header("x-trace-id").is_some());
    let after = client::request(handle.addr(), "GET", "/debug/requests", b"").unwrap();
    assert_eq!(after.status, 200, "the daemon survived the panic");
    assert!(after.text().contains("\"status\": 500"));

    // Bounded: hammer more requests than capacity and count records.
    for _ in 0..8 {
        client::request(handle.addr(), "GET", "/health", b"").unwrap();
    }
    let full = client::request(handle.addr(), "GET", "/debug/requests", b"").unwrap();
    let records = full.text().matches("\"trace_id\"").count();
    assert_eq!(records, 4, "ring keeps exactly flight_capacity records");
    handle.shutdown();
}

#[test]
fn access_log_captures_every_completed_request() {
    let log_path =
        std::env::temp_dir().join(format!("hcg-serve-access-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    {
        let handle = spawn(ServeConfig {
            access_log: Some(log_path.clone()),
            trace_seed: Some(3),
            ..ServeConfig::default()
        })
        .unwrap();
        let xml = model_xml(31);
        let miss = client::compile(handle.addr(), "arch=avx256", xml.as_bytes()).unwrap();
        assert_eq!(miss.status, 200);
        client::compile(handle.addr(), "arch=avx256", xml.as_bytes()).unwrap();
        client::request(handle.addr(), "GET", "/health", b"").unwrap();
        handle.shutdown();
    }
    let text = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one line per completed request");
    for line in &lines {
        hcg_obs::json::validate(line).expect("access log lines are valid JSON");
        assert!(line.contains("\"trace_id\""));
        assert!(line.contains("\"latency_us\""));
    }
    assert!(lines[0].contains("\"path\": \"/compile\""));
    assert!(lines[0].contains("\"cache\": \"miss\""));
    assert!(lines[1].contains("\"cache\": \"hit\""));
    assert!(lines[2].contains("\"path\": \"/health\""));
    assert!(lines[2].contains("\"cache\": \"-\""));
    let _ = std::fs::remove_file(&log_path);
}
