//! Service-level correctness: single-flight deduplication, negative
//! caching, eviction-then-recompile byte-identity over fuzz models, and
//! disk-backed warm restarts. Every response body is checked against the
//! direct (non-service) [`CompileSession`] compile — the daemon must be a
//! transparent cache, never a different compiler.

use hcg_core::emit::to_c_source;
use hcg_core::CompileSession;
use hcg_fuzz::{generate_model, GenConfig};
use hcg_isa::Arch;
use hcg_model::parser::model_to_xml;
use hcg_serve::{client, spawn, CompileOptions, ServeConfig};
use std::sync::Barrier;

/// The expected body for `model_xml` compiled directly, bypassing the
/// service (the byte-identity oracle).
fn direct_compile(model_xml: &str, query: &[(&str, &str)]) -> Result<String, String> {
    let map: std::collections::HashMap<&str, &str> = query.iter().copied().collect();
    let options = CompileOptions::from_query(|k| map.get(k).map(|v| (*v).to_owned()))
        .expect("test query is valid");
    let model = hcg_model::parser::model_from_xml(model_xml).map_err(|e| e.to_string())?;
    let session = CompileSession::new(model);
    session
        .generate(options.build_generator().as_ref(), options.arch)
        .map(|p| to_c_source(&p))
        .map_err(|e| e.to_string())
}

fn query_string(query: &[(&str, &str)]) -> String {
    query
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join("&")
}

#[test]
fn concurrent_identical_requests_compile_once_with_identical_bodies() {
    let handle = spawn(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let xml = model_to_xml(&generate_model(11, &GenConfig::default()));
    let expected = direct_compile(&xml, &[("arch", "neon128")]).unwrap();

    const CLIENTS: usize = 8;
    let barrier = Barrier::new(CLIENTS);
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    let resp =
                        client::compile(handle.addr(), "arch=neon128", xml.as_bytes()).unwrap();
                    assert_eq!(resp.status, 200);
                    resp.text()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for body in &bodies {
        assert_eq!(
            body, &expected,
            "every client sees the direct-compile bytes"
        );
    }
    let counters = handle.counters();
    let compiles = counters.compiles.load(std::sync::atomic::Ordering::Relaxed);
    let requests = counters.requests.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(requests, CLIENTS as u64);
    assert_eq!(
        compiles, 1,
        "single-flight: one compile for {CLIENTS} clients"
    );
    handle.shutdown();
}

#[test]
fn repeated_bad_requests_hit_the_negative_cache() {
    let handle = spawn(ServeConfig::default()).unwrap();
    // An invalid model: validation fails after parse (undriven input).
    let bad = "<model name=\"broken\">\n  <actor name=\"g\" kind=\"abs\"/>\n  \
               <actor name=\"o\" kind=\"outport\"/>\n  \
               <wire from=\"g:0\" to=\"o:0\"/>\n</model>\n";

    let first = client::compile(handle.addr(), "", bad.as_bytes()).unwrap();
    assert_eq!(first.status, 422);
    assert_eq!(first.header("x-cache"), Some("miss"));
    let second = client::compile(handle.addr(), "", bad.as_bytes()).unwrap();
    assert_eq!(second.status, 422);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cached failure replays verbatim");

    let counters = handle.counters();
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(
        counters.compiles.load(Relaxed),
        1,
        "one validation, not two"
    );
    assert_eq!(counters.negative_admitted.load(Relaxed), 1);
    assert_eq!(counters.negative_hits.load(Relaxed), 1);

    // Unparseable XML is negatively cached under its own key too.
    let garbage = b"this is not xml";
    let g1 = client::compile(handle.addr(), "", garbage).unwrap();
    let g2 = client::compile(handle.addr(), "", garbage).unwrap();
    assert_eq!(g1.status, 422);
    assert_eq!(g2.header("x-cache"), Some("hit"));
    handle.shutdown();
}

#[test]
fn eviction_then_recompile_stays_byte_identical() {
    // A cache so small that every new artifact evicts the previous ones:
    // one shard, 2 KiB budget (generated sources are larger).
    let handle = spawn(ServeConfig {
        shards: 1,
        shard_budget: 2 << 10,
        ..ServeConfig::default()
    })
    .unwrap();

    let cfg = GenConfig::default();
    let models: Vec<String> = (0..4)
        .map(|seed| model_to_xml(&generate_model(seed, &cfg)))
        .collect();
    let query = [("generator", "hcg"), ("arch", "avx256")];
    let qs = query_string(&query);

    let mut first_pass = Vec::new();
    for xml in &models {
        let resp = client::compile(handle.addr(), &qs, xml.as_bytes()).unwrap();
        first_pass.push(resp);
    }
    // Cycle through again: earlier entries have been evicted, so these
    // recompile — and must reproduce the exact same bytes.
    for (xml, first) in models.iter().zip(&first_pass) {
        let again = client::compile(handle.addr(), &qs, xml.as_bytes()).unwrap();
        assert_eq!(again.status, first.status);
        assert_eq!(
            again.body, first.body,
            "recompile after eviction is byte-identical"
        );
        match direct_compile(xml, &query) {
            Ok(expected) => assert_eq!(again.text(), expected),
            Err(_) => assert_eq!(again.status, 422),
        }
    }
    let counters = handle.counters();
    assert!(
        counters.evicted.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the tiny budget must actually evict"
    );
    handle.shutdown();
}

#[test]
fn fuzz_models_roundtrip_across_generators_and_arches() {
    let handle = spawn(ServeConfig::default()).unwrap();
    let cfg = GenConfig::default();
    for seed in [3, 17] {
        let xml = model_to_xml(&generate_model(seed, &cfg));
        for generator in ["hcg", "simulink-coder", "dfsynth"] {
            for arch in Arch::ALL {
                let query = [("generator", generator), ("arch", arch.name())];
                let qs = query_string(&query);
                let resp = client::compile(handle.addr(), &qs, xml.as_bytes()).unwrap();
                match direct_compile(&xml, &query) {
                    Ok(expected) => {
                        assert_eq!(resp.status, 200, "{generator}/{arch}: {}", resp.text());
                        assert_eq!(resp.text(), expected, "{generator}/{arch}");
                    }
                    Err(_) => assert_eq!(resp.status, 422),
                }
            }
        }
    }
    // Beam mapping is part of the key: beam=4 must not alias greedy.
    let xml = model_to_xml(&generate_model(3, &cfg));
    let greedy = client::compile(handle.addr(), "arch=neon128", xml.as_bytes()).unwrap();
    let beam = client::compile(handle.addr(), "arch=neon128&beam=4", xml.as_bytes()).unwrap();
    assert_eq!(beam.header("x-cache"), Some("miss"), "distinct cache key");
    assert_eq!(
        beam.text(),
        direct_compile(&xml, &[("arch", "neon128"), ("beam", "4")]).unwrap()
    );
    drop(greedy);
    handle.shutdown();
}

#[test]
fn disk_backed_cache_restarts_warm() {
    let root = std::env::temp_dir().join(format!("hcg-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let xml = model_to_xml(&generate_model(29, &GenConfig::default()));

    let first_body;
    {
        let handle = spawn(ServeConfig {
            disk_root: Some(root.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let resp = client::compile(handle.addr(), "arch=sse128", xml.as_bytes()).unwrap();
        assert_eq!(resp.header("x-cache"), Some("miss"));
        first_body = resp.body;
        handle.shutdown();
    }

    // A fresh daemon over the same root serves the artifact without
    // compiling at all.
    let handle = spawn(ServeConfig {
        disk_root: Some(root.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    assert!(handle.cache_entries() >= 1, "preloaded from disk");
    let resp = client::compile(handle.addr(), "arch=sse128", xml.as_bytes()).unwrap();
    assert_eq!(resp.header("x-cache"), Some("hit"));
    assert_eq!(resp.body, first_body);
    assert_eq!(
        handle
            .counters()
            .compiles
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "warm start: no compile ran"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn metrics_and_health_endpoints_respond() {
    let handle = spawn(ServeConfig::default()).unwrap();
    let health = client::request(handle.addr(), "GET", "/health", b"").unwrap();
    assert_eq!(health.status, 200);

    let xml = model_to_xml(&generate_model(5, &GenConfig::default()));
    client::compile(handle.addr(), "", xml.as_bytes()).unwrap();
    let metrics = client::request(handle.addr(), "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    hcg_obs::json::validate(&text).expect("metrics endpoint serves valid JSON");
    assert!(text.contains("\"serve.requests\""));
    assert!(text.contains("\"serve.cache.entries\""));

    // Unknown routes and bad options are counted, not fatal.
    let missing = client::request(handle.addr(), "GET", "/nope", b"").unwrap();
    assert_eq!(missing.status, 404);
    let bad = client::compile(handle.addr(), "generator=gcc", xml.as_bytes()).unwrap();
    assert_eq!(bad.status, 400);
    handle.shutdown();
}

#[test]
fn post_shutdown_stops_the_daemon() {
    let handle = spawn(ServeConfig::default()).unwrap();
    let addr = handle.addr();
    let resp = client::request(addr, "POST", "/shutdown", b"").unwrap();
    assert_eq!(resp.status, 200);
    handle.wait();
    // The port no longer answers.
    assert!(client::request(addr, "GET", "/health", b"").is_err());
}
