//! The committed repro corpus and transient failure artifacts.
//!
//! Minimized failing models live as XML under `crates/fuzz/corpus/` and
//! are replayed by a tier-1 test and by `scripts/check.sh`. Raw (pre-
//! shrink) failures from live fuzz runs are written under `target/fuzz/`,
//! which is transient and gitignored.

use hcg_model::parser::{model_from_xml, model_to_xml};
use hcg_model::Model;
use std::fs;
use std::path::{Path, PathBuf};

/// The committed corpus directory (`crates/fuzz/corpus/`).
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Load every `.xml` model in `dir`, sorted by file name so replay order
/// is stable. Returns `(file_name, model)` pairs.
///
/// # Errors
///
/// Returns a description of the first unreadable or unparsable entry —
/// a corrupt committed repro must fail loudly, not silently skip.
pub fn load_corpus(dir: &Path) -> Result<Vec<(String, Model)>, String> {
    let mut names: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "xml"))
            .collect(),
        Err(_) => return Ok(Vec::new()), // no corpus yet
    };
    names.sort();
    let mut out = Vec::new();
    for path in names {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let model = model_from_xml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((name, model));
    }
    Ok(out)
}

/// Write `model` as XML into `dir` under `name` (extension `.xml` is
/// appended when missing). Creates the directory if needed and returns
/// the full path.
///
/// # Errors
///
/// Returns a description when the directory or file cannot be written.
pub fn write_repro(dir: &Path, name: &str, model: &Model) -> Result<PathBuf, String> {
    fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let file = if name.ends_with(".xml") {
        dir.join(name)
    } else {
        dir.join(format!("{name}.xml"))
    };
    fs::write(&file, model_to_xml(model)).map_err(|e| format!("{}: {e}", file.display()))?;
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_model, GenConfig};

    #[test]
    fn write_then_load_round_trips() {
        let dir = std::env::temp_dir().join("hcg_fuzz_corpus_test");
        let _ = fs::remove_dir_all(&dir);
        let m0 = generate_model(1, &GenConfig::default());
        let m1 = generate_model(2, &GenConfig::default());
        write_repro(&dir, "b_second", &m1).unwrap();
        write_repro(&dir, "a_first.xml", &m0).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        // Sorted by file name, not write order.
        assert_eq!(loaded[0].0, "a_first.xml");
        assert_eq!(loaded[0].1, m0);
        assert_eq!(loaded[1].1, m1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty_corpus() {
        let dir = std::env::temp_dir().join("hcg_fuzz_no_such_dir");
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(load_corpus(&dir).unwrap().len(), 0);
    }

    #[test]
    fn committed_corpus_parses() {
        // The committed repros must always load; an empty corpus is fine.
        let loaded = load_corpus(&corpus_dir()).unwrap();
        for (name, model) in &loaded {
            model
                .infer_types()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
