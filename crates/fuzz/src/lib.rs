//! # hcg-fuzz — differential model fuzzer for the HCG reproduction
//!
//! HCG's claim is that its SIMD-synthesised code is *equivalent* to what
//! the Simulink-Coder-like and DFSynth-like baselines produce, only
//! faster. This crate turns that claim into a continuously checked
//! property:
//!
//! 1. [`gen`] grows seeded, deterministic, size-bounded **random models**
//!    that are always type/scale-valid and schedulable;
//! 2. [`oracle`] compiles each model with all three generators across
//!    both evaluation ISAs, executes everything on the VM against the
//!    golden reference with shared seeded inputs, and checks the repo's
//!    metamorphic invariants (XML round-trip, indexed-vs-linear
//!    instruction selection, 1-vs-N-thread fleet identity);
//! 3. [`shrink`] delta-debugs any failing model down to a minimal repro;
//! 4. [`corpus`] stores minimized repros as committed XML replayed by a
//!    tier-1 test;
//! 5. [`run_fuzz`] fans cases across the [`hcg_exec`] pool and renders a
//!    [`report::FuzzReport`] whose seed-determined core is byte-stable.
//!
//! Driven by `cargo run --release -p hcg-bench --bin repro -- fuzz`.

#![warn(missing_docs)]

pub mod corpus;
pub mod edits;
pub mod gen;
pub mod oracle;
pub mod report;
pub mod shrink;

pub use edits::{random_edit, run_edit_case, EditOracleConfig};
pub use gen::{generate_model, GenConfig, OpWeights};
pub use oracle::{run_case, CaseReport, Divergence, OracleConfig};
pub use report::{FailureSummary, FuzzReport, VerifyVerdict};
pub use shrink::{shrink, ShrinkStats};

use hcg_model::parser::model_to_xml;
use std::path::PathBuf;
use std::time::Instant;

/// Configuration of one fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzConfig {
    /// Base seed; case `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Number of cases.
    pub iters: usize,
    /// Worker threads for fanning cases (`0` = available parallelism).
    pub threads: usize,
    /// Model generator tunables.
    pub gen: GenConfig,
    /// Oracle tunables (the per-case input seed is overridden per case).
    pub oracle: OracleConfig,
    /// Write raw and minimized failing models under `target/fuzz/`.
    pub write_failures: bool,
}

impl FuzzConfig {
    /// A run with everything defaulted except seed and iteration count.
    pub fn new(seed: u64, iters: usize) -> Self {
        FuzzConfig {
            seed,
            iters,
            threads: 0,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            write_failures: true,
        }
    }
}

/// splitmix64 — the standard 64-bit mix used to derive independent
/// per-case seeds from `(base, index)` without correlation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed of case `index` within a run based on `base`.
pub fn case_seed(base: u64, index: usize) -> u64 {
    splitmix64(base ^ splitmix64(index as u64))
}

/// Transient fuzz artifact directory (`target/fuzz/` at the workspace
/// root) — gitignored, safe to delete.
pub fn transient_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/fuzz")
}

/// Statically verify every generator × oracle architecture program of a
/// (minimized) failing model with `hcg-verify`, producing one verdict per
/// program for the report. Purely structural — no execution — so the
/// verdicts are deterministic and cheap even for models whose dynamic
/// behavior diverges.
fn static_verdicts(model: &hcg_model::Model) -> Vec<VerifyVerdict> {
    let mut out = Vec::new();
    for g in oracle::ORACLE_GENERATORS {
        let generator = oracle::generator_named(g);
        for arch in oracle::ORACLE_ARCHES {
            let (verdict, witness) = match generator.generate(model, arch) {
                Ok(prog) => match hcg_verify::verify_program(model, &prog) {
                    Ok(outcome) if outcome.equivalent => ("proved".to_owned(), None),
                    Ok(outcome) => (
                        "divergent".to_owned(),
                        outcome.witness.map(|w| w.to_string()),
                    ),
                    Err(e) => (format!("verify error: {e}"), None),
                },
                Err(e) => (format!("generate error: {e}"), None),
            };
            out.push(VerifyVerdict {
                generator: g,
                arch: arch.to_string(),
                verdict,
                witness,
            });
        }
    }
    out
}

/// What one fuzz case job returns from the pool.
struct CaseOutcome {
    seed: u64,
    xml: String,
    actors: usize,
    report: CaseReport,
}

/// Run `cfg.iters` fuzz cases across the exec pool and aggregate a
/// [`FuzzReport`]. Failing cases are shrunk with the oracle itself as the
/// predicate; minimized repros land under [`transient_dir`] when
/// `cfg.write_failures` is set. Finally the committed corpus is replayed
/// through the oracle.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let mut out = FuzzReport {
        seed: cfg.seed,
        iters: cfg.iters,
        threads: hcg_exec::effective_threads(cfg.threads),
        ..FuzzReport::default()
    };

    // Fan the cases across the pool. Each job is fully self-contained:
    // generate, serialize (for the digest), run the oracle.
    let jobs: Vec<_> = (0..cfg.iters)
        .map(|i| {
            let seed = case_seed(cfg.seed, i);
            let gen_cfg = cfg.gen.clone();
            let mut oracle_cfg = cfg.oracle;
            oracle_cfg.input_seed = splitmix64(seed);
            move || {
                let model = generate_model(seed, &gen_cfg);
                CaseOutcome {
                    seed,
                    xml: model_to_xml(&model),
                    actors: model.actors.len(),
                    report: run_case(&model, &oracle_cfg),
                }
            }
        })
        .collect();
    let results = hcg_exec::run_jobs(cfg.threads, jobs);

    // Aggregate sequentially, in submission order, so the digest and the
    // failure list are deterministic regardless of worker interleaving.
    let mut stage_totals: Vec<(&'static str, std::time::Duration)> = Vec::new();
    for (i, result) in results.into_iter().enumerate() {
        let seed = case_seed(cfg.seed, i);
        let case = match result {
            Ok(c) => c,
            Err(panic) => {
                out.failures.push(FailureSummary {
                    seed,
                    divergences: vec![Divergence {
                        check: "panic",
                        detail: panic.to_string(),
                    }],
                    shrink: ShrinkStats {
                        attempts: 0,
                        accepted: 0,
                        initial_actors: 0,
                        final_actors: 0,
                    },
                    repro: None,
                    verify: Vec::new(),
                });
                continue;
            }
        };
        out.cases_digest = report::fnv1a(case.xml.as_bytes(), out.cases_digest);
        out.total_actors += case.actors;
        for (stage, d) in &case.report.timings {
            match stage_totals.iter_mut().find(|(s, _)| s == stage) {
                Some((_, total)) => *total += *d,
                None => stage_totals.push((stage, *d)),
            }
        }
        if case.report.passed() {
            out.passed += 1;
            continue;
        }

        // A real divergence: shrink with the oracle as the predicate and
        // keep the minimized repro.
        let mut oracle_cfg = cfg.oracle;
        oracle_cfg.input_seed = splitmix64(case.seed);
        let model = generate_model(case.seed, &cfg.gen);
        let (small, stats) = shrink::shrink(&model, &|m| !run_case(m, &oracle_cfg).passed());
        let repro = if cfg.write_failures {
            let dir = transient_dir();
            let _ = corpus::write_repro(&dir, &format!("raw_{seed:016x}"), &model);
            corpus::write_repro(&dir, &format!("min_{seed:016x}"), &small)
                .ok()
                .map(|p| p.display().to_string())
        } else {
            None
        };
        // Run the static translation validator over the minimized model:
        // a structural divergence pins the bug to a generator, while
        // "proved" verdicts point at input-dependent or numeric causes.
        let verify = static_verdicts(&small);
        out.failures.push(FailureSummary {
            seed,
            divergences: case.report.divergences,
            shrink: stats,
            repro,
            verify,
        });
    }
    // Fold the accumulated stage timings (plus run shape) into the unified
    // telemetry schema — the non-deterministic half of the report.
    let mut telemetry = hcg_obs::MetricsSnapshot::new();
    telemetry.set_counter("fuzz.cases", cfg.iters as u64);
    telemetry.set_counter("fuzz.threads", out.threads as u64);
    for (stage, d) in &stage_totals {
        telemetry.set_gauge(&format!("fuzz.stage_seconds.{stage}"), d.as_secs_f64());
    }
    out.telemetry = telemetry;

    // Replay the committed corpus: every minimized repro must still load
    // and run through the oracle (clean, once its bug is fixed).
    if let Ok(entries) = corpus::load_corpus(&corpus::corpus_dir()) {
        for (name, model) in entries {
            let r = run_case(&model, &cfg.oracle);
            if r.passed() {
                out.corpus_replayed += 1;
            } else {
                let verify = static_verdicts(&model);
                out.failures.push(FailureSummary {
                    seed: u64::MAX,
                    divergences: r.divergences,
                    shrink: ShrinkStats {
                        attempts: 0,
                        accepted: 0,
                        initial_actors: model.actors.len(),
                        final_actors: model.actors.len(),
                    },
                    repro: Some(format!("corpus/{name}")),
                    verify,
                });
            }
        }
    }

    out.elapsed = start.elapsed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_spread() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| case_seed(0, i)).collect();
        assert_eq!(seeds.len(), 1000);
        // Different bases decorrelate.
        assert_ne!(case_seed(0, 5), case_seed(1, 5));
    }

    #[test]
    fn small_run_is_clean_and_deterministic() {
        let cfg = FuzzConfig {
            threads: 2,
            write_failures: false,
            ..FuzzConfig::new(0, 6)
        };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert_eq!(a.passed, 6, "divergences: {:?}", a.failures);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn static_verdicts_prove_clean_generated_models() {
        // Any model the generator produces must statically verify for
        // every generator × oracle arch — the same property the dynamic
        // oracle checks, proven without execution.
        for i in 0..3 {
            let model = generate_model(case_seed(11, i), &GenConfig::default());
            let verdicts = static_verdicts(&model);
            assert_eq!(verdicts.len(), 6);
            for v in &verdicts {
                assert_eq!(
                    v.verdict, "proved",
                    "{} on {} for seed index {i}: {:?}",
                    v.generator, v.arch, v.witness
                );
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let mut cfg = FuzzConfig::new(42, 4);
        cfg.write_failures = false;
        cfg.threads = 1;
        let one = run_fuzz(&cfg);
        cfg.threads = 4;
        let many = run_fuzz(&cfg);
        assert_eq!(one.deterministic_json(), many.deterministic_json());
    }
}
