//! The fuzz run report and its JSON rendering.
//!
//! The report splits into a *deterministic core* — everything derived
//! from seeds: case counts, divergences, the digest over generated model
//! XML, shrink counters — and wall-clock telemetry. `repro -- fuzz`
//! asserts determinism by comparing [`FuzzReport::deterministic_json`]
//! across runs, while the full [`FuzzReport::to_json`] adds timing for
//! humans and `BENCH_fuzz.json`.

use crate::oracle::Divergence;
use crate::shrink::ShrinkStats;
use std::time::Duration;

/// Static-verifier verdict for one generator × architecture program of a
/// minimized failing model (see `hcg-verify`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyVerdict {
    /// Generator short name (`hcg`, `simulink-coder`, `dfsynth`).
    pub generator: &'static str,
    /// Target architecture the program was generated for.
    pub arch: String,
    /// `proved`, `divergent`, or an error description.
    pub verdict: String,
    /// First-divergence witness rendering, when divergent.
    pub witness: Option<String>,
}

/// One shrunk failure in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSummary {
    /// Case seed that produced the failing model.
    pub seed: u64,
    /// Every oracle divergence of the case.
    pub divergences: Vec<Divergence>,
    /// Shrinker counters for the case.
    pub shrink: ShrinkStats,
    /// Repro file the minimized model was written to, if any.
    pub repro: Option<String>,
    /// Static translation-validation verdicts for the minimized model,
    /// one per generator × oracle architecture. The static verifier and
    /// the dynamic oracle disagree exactly when a bug is input-dependent.
    pub verify: Vec<VerifyVerdict>,
}

/// Aggregated outcome of one fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Base seed of the run.
    pub seed: u64,
    /// Cases requested.
    pub iters: usize,
    /// Worker threads used to fan out cases.
    pub threads: usize,
    /// Cases that passed every oracle check.
    pub passed: usize,
    /// Failing cases, in case order.
    pub failures: Vec<FailureSummary>,
    /// FNV-1a digest over every generated model's XML, in case order —
    /// the witness that the same seed generates the same case stream.
    pub cases_digest: u64,
    /// Total actors across all generated models (a coarse size witness).
    pub total_actors: usize,
    /// Committed corpus entries replayed cleanly at the end of the run.
    pub corpus_replayed: usize,
    /// Wall-clock of the whole run (excluded from the deterministic core).
    pub elapsed: Duration,
    /// Wall-clock telemetry in the unified metrics schema: per-stage oracle
    /// seconds as `fuzz.stage_seconds.<stage>` gauges plus run-shape
    /// counters (excluded from the deterministic core).
    pub telemetry: hcg_obs::MetricsSnapshot,
}

/// FNV-1a over a byte slice; tiny, dependency-free, stable across runs
/// and platforms.
pub fn fnv1a(bytes: &[u8], state: u64) -> u64 {
    let mut h = if state == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        state
    };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl FuzzReport {
    /// Total divergences across all failing cases.
    pub fn divergence_count(&self) -> usize {
        self.failures.iter().map(|f| f.divergences.len()).sum()
    }

    /// Total accepted shrink steps across all failing cases.
    pub fn shrink_steps(&self) -> usize {
        self.failures.iter().map(|f| f.shrink.accepted).sum()
    }

    /// Cases per second of wall-clock.
    pub fn cases_per_sec(&self) -> f64 {
        self.iters as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The seed-determined fields only — two runs with the same seed and
    /// config must render this identically.
    pub fn deterministic_json(&self) -> String {
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| {
                let divs: Vec<String> = f
                    .divergences
                    .iter()
                    .map(|d| {
                        format!(
                            "{{\"check\": \"{}\", \"detail\": \"{}\"}}",
                            escape(d.check),
                            escape(&d.detail)
                        )
                    })
                    .collect();
                let verify: Vec<String> = f
                    .verify
                    .iter()
                    .map(|v| {
                        let witness = match &v.witness {
                            Some(w) => format!(", \"witness\": \"{}\"", escape(w)),
                            None => String::new(),
                        };
                        format!(
                            "{{\"generator\": \"{}\", \"arch\": \"{}\", \"verdict\": \"{}\"{}}}",
                            escape(v.generator),
                            escape(&v.arch),
                            escape(&v.verdict),
                            witness
                        )
                    })
                    .collect();
                format!(
                    "{{\"seed\": {}, \"divergences\": [{}], \"shrink\": {{\"attempts\": {}, \"accepted\": {}, \"initial_actors\": {}, \"final_actors\": {}}}, \"verify\": [{}]}}",
                    f.seed,
                    divs.join(", "),
                    f.shrink.attempts,
                    f.shrink.accepted,
                    f.shrink.initial_actors,
                    f.shrink.final_actors,
                    verify.join(", ")
                )
            })
            .collect();
        format!(
            "{{\"seed\": {}, \"iters\": {}, \"passed\": {}, \"divergences\": {}, \"shrink_steps\": {}, \"cases_digest\": \"{:016x}\", \"total_actors\": {}, \"corpus_replayed\": {}, \"failures\": [{}]}}",
            self.seed,
            self.iters,
            self.passed,
            self.divergence_count(),
            self.shrink_steps(),
            self.cases_digest,
            self.total_actors,
            self.corpus_replayed,
            failures.join(", ")
        )
    }

    /// The full report: the deterministic core plus timing telemetry (the
    /// shared [`hcg_obs::MetricsSnapshot`] JSON schema).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"deterministic\": {}, \"threads\": {}, \"elapsed_seconds\": {:.6}, \"cases_per_sec\": {:.2}, \"telemetry\": {}}}",
            self.deterministic_json(),
            self.threads,
            self.elapsed.as_secs_f64(),
            self.cases_per_sec(),
            self.telemetry.to_json()
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b"", 0), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"abc", 0), fnv1a(b"abc", 0));
        assert_ne!(fnv1a(b"abc", 0), fnv1a(b"abd", 0));
        // Chaining differs from concatenation starting state but is stable.
        let chained = fnv1a(b"def", fnv1a(b"abc", 0));
        assert_eq!(chained, fnv1a(b"def", fnv1a(b"abc", 0)));
    }

    #[test]
    fn deterministic_json_omits_timing() {
        let mut r = FuzzReport {
            seed: 7,
            iters: 10,
            passed: 10,
            cases_digest: 0xabcd,
            ..FuzzReport::default()
        };
        let a = r.deterministic_json();
        r.elapsed = Duration::from_secs(99);
        r.telemetry.set_gauge("fuzz.stage_seconds.compile", 1.0);
        assert_eq!(a, r.deterministic_json());
        assert!(a.contains("\"cases_digest\": \"000000000000abcd\""));
        assert!(!a.contains("elapsed"));
        let full = r.to_json();
        assert!(full.contains("elapsed_seconds"));
        assert!(full.contains("\"telemetry\": {\"fuzz.stage_seconds.compile\": 1}"));
    }

    #[test]
    fn detail_strings_are_escaped() {
        let r = FuzzReport {
            failures: vec![FailureSummary {
                seed: 1,
                divergences: vec![Divergence {
                    check: "compile",
                    detail: "say \"hi\" \\ bye".to_owned(),
                }],
                shrink: crate::shrink::ShrinkStats {
                    attempts: 0,
                    accepted: 0,
                    initial_actors: 1,
                    final_actors: 1,
                },
                repro: None,
                verify: Vec::new(),
            }],
            ..FuzzReport::default()
        };
        let j = r.deterministic_json();
        assert!(j.contains("say \\\"hi\\\" \\\\ bye"));
        // No verdicts recorded: the array is present but empty.
        assert!(j.contains("\"verify\": []"));
    }

    #[test]
    fn verify_verdicts_render_inside_failures() {
        let r = FuzzReport {
            failures: vec![FailureSummary {
                seed: 3,
                divergences: Vec::new(),
                shrink: crate::shrink::ShrinkStats {
                    attempts: 0,
                    accepted: 0,
                    initial_actors: 1,
                    final_actors: 1,
                },
                repro: None,
                verify: vec![
                    VerifyVerdict {
                        generator: "hcg",
                        arch: "neon128".to_owned(),
                        verdict: "proved".to_owned(),
                        witness: None,
                    },
                    VerifyVerdict {
                        generator: "dfsynth",
                        arch: "avx256".to_owned(),
                        verdict: "divergent".to_owned(),
                        witness: Some("outport \"y\" element 0".to_owned()),
                    },
                ],
            }],
            ..FuzzReport::default()
        };
        let j = r.deterministic_json();
        assert!(j.contains("\"generator\": \"hcg\""));
        assert!(j.contains("\"verdict\": \"proved\""));
        assert!(j.contains("\"witness\": \"outport \\\"y\\\" element 0\""));
    }
}
