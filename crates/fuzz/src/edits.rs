//! Metamorphic edit oracle: incremental recompilation must be invisible.
//!
//! [`run_edit_case`] grows a random model ([`crate::gen`]), drives an
//! [`EditSession`] through a seeded sequence of random edits —
//! reparameterise, retype, rewire, add, remove-by-bypass — and after
//! *every* edit compiles the model both incrementally and from scratch
//! for every oracle generator × architecture. The invariant is strict
//! byte-identity of the emitted C: the dirty-region splicing in
//! [`EditSession`] may only skip work, never change output.
//!
//! Each proposed edit is validated on a throwaway clone before being
//! applied (`front_end().is_ok()`), so the session mostly sees valid
//! models; a rejected proposal is retried a bounded number of times and
//! then skipped. Both sides of every comparison use *fresh* generators,
//! so autotuner history cannot mask (or cause) a divergence.

use crate::oracle::{generator_named, Divergence, ORACLE_ARCHES, ORACLE_GENERATORS};
use hcg_core::emit::to_c_source;
use hcg_core::EditSession;
use hcg_model::delta::EditOp;
use hcg_model::schedule::schedule;
use hcg_model::{ActorKind, DataType, Model, ModelDelta, Param};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Tunables of one edit-oracle case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditOracleConfig {
    /// Edits applied per case (each followed by a full identity check).
    pub edits: usize,
    /// Actor-count ceiling: `add` proposals stop above this.
    pub max_actors: usize,
}

impl Default for EditOracleConfig {
    fn default() -> Self {
        EditOracleConfig {
            edits: 5,
            max_actors: 40,
        }
    }
}

/// Binary element-wise kinds legal on every dtype (retype vocabulary).
const BINARY_ANY: [ActorKind; 6] = [
    ActorKind::Add,
    ActorKind::Sub,
    ActorKind::Mul,
    ActorKind::Min,
    ActorKind::Max,
    ActorKind::Abd,
];

/// Binary kinds additionally legal on integers.
const BINARY_INT: [ActorKind; 3] = [ActorKind::BitAnd, ActorKind::BitOr, ActorKind::BitXor];

/// Unary retype vocabulary for a dtype.
fn unary_kinds(d: DataType) -> &'static [ActorKind] {
    if d.is_float() {
        &[ActorKind::Abs, ActorKind::Neg]
    } else if d.is_signed() {
        &[ActorKind::Abs, ActorKind::Neg, ActorKind::BitNot]
    } else {
        &[ActorKind::BitNot]
    }
}

/// Propose one random edit against `model`, retrying until the edited
/// model still has a valid front end. Returns `None` when no valid edit
/// was found within the attempt budget (rare: tiny models where every
/// family is infeasible).
///
/// `names` is a monotone counter for fresh actor names (`ed{n}`,
/// `edo{n}`), owned by the caller so names stay unique across a whole
/// edit sequence.
pub fn random_edit(
    model: &Model,
    rng: &mut StdRng,
    names: &mut usize,
    max_actors: usize,
) -> Option<ModelDelta> {
    for _ in 0..8 {
        let Some(delta) = propose(model, rng, names, max_actors) else {
            continue;
        };
        let Ok(next) = delta.apply(model) else {
            continue;
        };
        if next.front_end().is_ok() {
            return Some(delta);
        }
    }
    None
}

/// One unvalidated proposal from a weighted family draw.
fn propose(
    model: &Model,
    rng: &mut StdRng,
    names: &mut usize,
    max_actors: usize,
) -> Option<ModelDelta> {
    let types = model.infer_types().expect("edit-oracle models are valid");
    let positions = schedule(model)
        .expect("edit-oracle models schedule")
        .positions();

    // Candidate pools per family.
    let reparam: Vec<&hcg_model::Actor> = model
        .actors
        .iter()
        .filter(|a| {
            matches!(
                a.kind,
                ActorKind::Gain
                    | ActorKind::Saturate
                    | ActorKind::Shr
                    | ActorKind::Shl
                    | ActorKind::Constant
            )
        })
        .collect();
    let retype: Vec<&hcg_model::Actor> = model
        .actors
        .iter()
        .filter(|a| {
            BINARY_ANY.contains(&a.kind)
                || BINARY_INT.contains(&a.kind)
                || matches!(
                    a.kind,
                    ActorKind::Abs
                        | ActorKind::Neg
                        | ActorKind::BitNot
                        | ActorKind::Shr
                        | ActorKind::Shl
                )
        })
        .collect();
    // A rewirable input: its consumer is a non-port actor and some other
    // producer of the exact same signal type is scheduled strictly
    // earlier (so plain dataflow edges stay forward).
    let rewire: Vec<(String, usize, Vec<String>)> = model
        .connections
        .iter()
        .filter_map(|c| {
            let to = model.actor(c.to.actor);
            if matches!(to.kind, ActorKind::Outport) {
                return None;
            }
            let want = types.output(c.from.actor, 0);
            let alts: Vec<String> = model
                .actors
                .iter()
                .filter(|p| {
                    p.kind.output_count() == 1
                        && p.id != c.from.actor
                        && positions[p.id.0] < positions[c.to.actor.0]
                        && types.output(p.id, 0) == want
                })
                .map(|p| p.name.clone())
                .collect();
            (!alts.is_empty()).then(|| (to.name.clone(), c.to.port, alts))
        })
        .collect();
    let taps: Vec<&hcg_model::Actor> = model
        .actors
        .iter()
        .filter(|a| a.kind.output_count() == 1)
        .collect();
    // Bypassable: one input, one output, same signal type through, and a
    // driver to splice consumers onto.
    let bypass: Vec<&hcg_model::Actor> = model
        .actors
        .iter()
        .filter(|a| {
            a.kind.input_count() == 1
                && a.kind.output_count() == 1
                && model
                    .driver(hcg_model::PortRef::new(a.id, 0))
                    .is_some_and(|d| types.output(d.actor, 0) == types.output(a.id, 0))
        })
        .collect();

    // Weighted draw over feasible families.
    let can_add = model.actors.len() + 2 <= max_actors && !taps.is_empty();
    let menu: Vec<(u32, u8)> = [
        (3, 0u8, !reparam.is_empty()),
        (3, 1, !retype.is_empty()),
        (2, 2, !rewire.is_empty()),
        (2, 3, can_add),
        (2, 4, !bypass.is_empty()),
    ]
    .into_iter()
    .filter_map(|(w, tag, ok)| ok.then_some((w, tag)))
    .collect();
    if menu.is_empty() {
        return None;
    }
    let total: u32 = menu.iter().map(|(w, _)| w).sum();
    let mut roll = rng.gen_range(0..total);
    let mut tag = menu[0].1;
    for (w, t) in &menu {
        if roll < *w {
            tag = *t;
            break;
        }
        roll -= w;
    }

    match tag {
        // Reparameterise: small integral perturbations that keep every
        // parameter in its legal range.
        0 => {
            let a = reparam[rng.gen_range(0..reparam.len())];
            let (param, value) = match a.kind {
                ActorKind::Gain => {
                    let cur = match a.param("gain") {
                        Some(Param::Float(f)) => *f,
                        _ => 1.0,
                    };
                    ("gain", Param::Float(cur + 0.25))
                }
                ActorKind::Saturate => {
                    let cur = match a.param("min") {
                        Some(Param::Float(f)) => *f,
                        _ => -1.0,
                    };
                    ("min", Param::Float(cur - 0.25))
                }
                ActorKind::Shr | ActorKind::Shl => {
                    let cur = match a.param("amount") {
                        Some(Param::Int(i)) => *i,
                        _ => 0,
                    };
                    ("amount", Param::Int((cur + 1) % 4))
                }
                ActorKind::Constant => {
                    let value = match a.param("value") {
                        Some(Param::Float(f)) => Param::Float(f + 1.0),
                        Some(Param::FloatVec(v)) => {
                            Param::FloatVec(v.iter().map(|x| x + 1.0).collect())
                        }
                        _ => return None,
                    };
                    ("value", value)
                }
                _ => unreachable!("reparam pool is filtered by kind"),
            };
            Some(ModelDelta::single(EditOp::SetParam {
                name: a.name.clone(),
                param: param.to_owned(),
                value,
            }))
        }
        // Retype within the same-arity, same-dtype-legality family.
        1 => {
            let a = retype[rng.gen_range(0..retype.len())];
            let dtype = types.output(a.id, 0).dtype;
            let pool: Vec<ActorKind> =
                if BINARY_ANY.contains(&a.kind) || BINARY_INT.contains(&a.kind) {
                    BINARY_ANY
                        .iter()
                        .chain(
                            dtype
                                .is_int()
                                .then_some(BINARY_INT.iter())
                                .into_iter()
                                .flatten(),
                        )
                        .copied()
                        .filter(|k| *k != a.kind)
                        .collect()
                } else if matches!(a.kind, ActorKind::Shr | ActorKind::Shl) {
                    vec![if a.kind == ActorKind::Shr {
                        ActorKind::Shl
                    } else {
                        ActorKind::Shr
                    }]
                } else {
                    unary_kinds(dtype)
                        .iter()
                        .copied()
                        .filter(|k| *k != a.kind)
                        .collect()
                };
            if pool.is_empty() {
                return None;
            }
            Some(ModelDelta::single(EditOp::SetKind {
                name: a.name.clone(),
                kind: pool[rng.gen_range(0..pool.len())],
            }))
        }
        // Rewire an input to an alternative same-typed producer.
        2 => {
            let (to_name, to_port, alts) = &rewire[rng.gen_range(0..rewire.len())];
            let from = alts[rng.gen_range(0..alts.len())].clone();
            Some(ModelDelta::single(EditOp::Connect {
                from: (from, 0),
                to: (to_name.clone(), *to_port),
            }))
        }
        // Add a unary tap on an existing value, sunk into a new outport.
        3 => {
            let src = taps[rng.gen_range(0..taps.len())];
            let kinds = unary_kinds(types.output(src.id, 0).dtype);
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let n = *names;
            *names += 1;
            Some(ModelDelta {
                ops: vec![
                    EditOp::AddActor {
                        name: format!("ed{n}"),
                        kind,
                        params: BTreeMap::new(),
                    },
                    EditOp::AddActor {
                        name: format!("edo{n}"),
                        kind: ActorKind::Outport,
                        params: BTreeMap::new(),
                    },
                    EditOp::Connect {
                        from: (src.name.clone(), 0),
                        to: (format!("ed{n}"), 0),
                    },
                    EditOp::Connect {
                        from: (format!("ed{n}"), 0),
                        to: (format!("edo{n}"), 0),
                    },
                ],
            })
        }
        // Remove a pass-through actor, splicing its consumers onto its
        // driver.
        _ => {
            let a = bypass[rng.gen_range(0..bypass.len())];
            let driver = model
                .driver(hcg_model::PortRef::new(a.id, 0))
                .expect("bypass pool requires a driver");
            let driver_name = model.actor(driver.actor).name.clone();
            let mut ops: Vec<EditOp> = model
                .consumers(hcg_model::PortRef::new(a.id, 0))
                .into_iter()
                .map(|c| EditOp::Connect {
                    from: (driver_name.clone(), driver.port),
                    to: (model.actor(c.actor).name.clone(), c.port),
                })
                .collect();
            ops.push(EditOp::RemoveActor {
                name: a.name.clone(),
            });
            Some(ModelDelta { ops })
        }
    }
}

/// Run one edit-oracle case: seed a model, apply `cfg.edits` random edits
/// through an [`EditSession`], and after each edit check byte-identity of
/// the incremental compile against a from-scratch compile for every
/// oracle generator × architecture. Returns every divergence found (empty
/// means the case passed).
pub fn run_edit_case(
    seed: u64,
    gen_cfg: &crate::GenConfig,
    cfg: &EditOracleConfig,
) -> Vec<Divergence> {
    let _span = hcg_obs::span_with("fuzz", || format!("edit-case/{seed:016x}"));
    let base = crate::generate_model(seed, gen_cfg);
    let mut session = EditSession::new(base);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut names = 0usize;
    let mut divergences = Vec::new();

    for step in 0..cfg.edits {
        let Some(delta) = random_edit(session.model(), &mut rng, &mut names, cfg.max_actors) else {
            continue;
        };
        if let Err(e) = session.apply_delta(&delta) {
            divergences.push(Divergence {
                check: "edit-apply",
                detail: format!("step {step}: {delta:?}: {e}"),
            });
            return divergences;
        }
        for g in ORACLE_GENERATORS {
            for arch in ORACLE_ARCHES {
                // Fresh generators on both sides: autotuner history must
                // not be able to mask or cause a divergence.
                let inc = session.generate(generator_named(g).as_ref(), arch);
                let fresh = generator_named(g).generate(session.model(), arch);
                match (inc, fresh) {
                    (Ok(a), Ok(b)) => {
                        if to_c_source(&a) != to_c_source(&b) {
                            divergences.push(Divergence {
                                check: "edit-identity",
                                detail: format!(
                                    "step {step}: {g} on {arch}: incremental C differs from scratch"
                                ),
                            });
                        }
                    }
                    (Err(a), Err(b)) if a == b => {}
                    (a, b) => {
                        divergences.push(Divergence {
                            check: "edit-compile",
                            detail: format!(
                                "step {step}: {g} on {arch}: incremental={:?} scratch={:?}",
                                a.err(),
                                b.err()
                            ),
                        });
                    }
                }
            }
        }
    }
    divergences
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_seed;

    #[test]
    fn edit_cases_pass_for_many_seeds() {
        let gen_cfg = crate::GenConfig::default();
        let cfg = EditOracleConfig::default();
        for i in 0..6 {
            let seed = case_seed(0xED17, i);
            let d = run_edit_case(seed, &gen_cfg, &cfg);
            assert!(d.is_empty(), "seed {seed:#x} diverged: {d:?}");
        }
    }

    #[test]
    fn edit_cases_are_deterministic() {
        let gen_cfg = crate::GenConfig::default();
        let cfg = EditOracleConfig::default();
        let seed = case_seed(7, 3);
        assert_eq!(
            run_edit_case(seed, &gen_cfg, &cfg),
            run_edit_case(seed, &gen_cfg, &cfg)
        );
    }

    #[test]
    fn random_edits_preserve_validity() {
        let gen_cfg = crate::GenConfig::default();
        for i in 0..10 {
            let seed = case_seed(99, i);
            let mut model = crate::generate_model(seed, &gen_cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut names = 0;
            for _ in 0..4 {
                if let Some(d) = random_edit(&model, &mut rng, &mut names, 40) {
                    model = d.apply(&model).expect("validated edit applies");
                    model
                        .front_end()
                        .unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
                }
            }
        }
    }
}
