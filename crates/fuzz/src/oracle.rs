//! The differential oracle: every check one fuzz case must pass.
//!
//! A case is one generated model. The oracle compiles it with all three
//! generators across both evaluation architectures, runs every program on
//! the VM against the golden reference with shared seeded inputs, and
//! layers on the metamorphic invariants the repo already promises
//! elsewhere:
//!
//! * **equivalence** — cross-generator numerical agreement, relative-
//!   tolerance-bounded for floats, exact for integers (the VM computes
//!   both sides, so only generator semantics can differ);
//! * **validate** / **lint** — [`hcg_vm::validate_all`] and the analyzer
//!   report no defects on any generated program, and the model itself
//!   lints clean;
//! * **xml-roundtrip** — `parse(emit(model))` reproduces the model and
//!   byte-identical C for every generator × architecture;
//! * **indexed-selection** — [`find_instruction`] and
//!   [`find_instruction_indexed`] pick the same instruction for every
//!   candidate tree derived from the model's batch actors;
//! * **fleet-identity** — compiling the case's job matrix on 1 thread and
//!   N threads yields byte-identical sources.
//!
//! The oracle never panics: every failure (including a generator error)
//! becomes a [`Divergence`], so the fuzz loop and the shrinker can treat
//! "diverges" as a plain predicate.
//!
//! [`find_instruction`]: hcg_graph::matching::find_instruction
//! [`find_instruction_indexed`]: hcg_graph::matching::find_instruction_indexed

use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
use hcg_core::dispatch::{classify_all, Dispatch};
use hcg_core::emit::to_c_source;
use hcg_core::{CodeGenerator, HcgGen, HcgOptions, MappingStrategy, Reference};
use hcg_graph::matching::{find_instruction, find_instruction_indexed};
use hcg_graph::{DfgInput, ValTree};
use hcg_isa::{sets, Arch, InstrIndex};
use hcg_kernels::CodeLibrary;
use hcg_model::parser::{model_from_xml, model_to_xml};
use hcg_model::{ActorKind, Model, Tensor};
use hcg_vm::{validate_all, Compiler, CostModel, Machine, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Generator short names the oracle drives, in evaluation order (the same
/// vocabulary as the bench fleet).
pub const ORACLE_GENERATORS: [&str; 3] = ["simulink-coder", "dfsynth", "hcg"];

/// Architectures every case is compiled for.
pub const ORACLE_ARCHES: [Arch; 2] = [Arch::Neon128, Arch::Avx256];

/// Construct a generator by short name.
///
/// # Panics
///
/// Panics on an unknown name — the caller controls the vocabulary.
pub fn generator_named(name: &str) -> Box<dyn CodeGenerator> {
    generator_for(name, MappingStrategy::Greedy)
}

/// [`generator_named`] with an explicit region-mapping strategy for the
/// HCG generator (the baselines have no mapping stage and ignore it). The
/// oracle threads one strategy through *every* stage that compiles — the
/// matrix, the XML-roundtrip recompile and the fleet-identity recompile —
/// so byte-identity checks compare like with like.
pub fn generator_for(name: &str, mapping: MappingStrategy) -> Box<dyn CodeGenerator> {
    match name {
        "simulink-coder" => Box::new(SimulinkCoderGen::new()),
        "dfsynth" => Box::new(DfSynthGen::new()),
        "hcg" => Box::new(HcgGen::with_options(HcgOptions {
            mapping,
            ..HcgOptions::default()
        })),
        other => panic!("unknown generator {other:?}"),
    }
}

/// Tunables of one oracle run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// VM steps executed per program (state actors need > 1 to matter).
    pub steps: usize,
    /// Seed for the shared random inputs.
    pub input_seed: u64,
    /// Relative tolerance for float outputs (integers must agree exactly;
    /// the generated vocabulary has no reductions, so agreement is tight).
    pub float_tolerance: f64,
    /// Worker count for the N-thread side of the fleet-identity check.
    pub fleet_threads: usize,
    /// Region-mapping strategy for the HCG generator across all stages —
    /// running the oracle with [`MappingStrategy::Beam`] gates the search
    /// path with the full differential battery.
    pub mapping: MappingStrategy,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            steps: 3,
            input_seed: 0x5eed,
            float_tolerance: 1e-9,
            fleet_threads: 4,
            mapping: MappingStrategy::Greedy,
        }
    }
}

/// One failed check. `check` names the oracle stage; `detail` is a
/// deterministic human-readable description (no wall-clock content, so a
/// re-run with the same seed reproduces it byte-for-byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Oracle stage that failed (`"compile"`, `"equivalence"`, ...).
    pub check: &'static str,
    /// What diverged, with enough context to triage.
    pub detail: String,
}

/// The oracle's verdict on one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Every failed check, in oracle-stage order. Empty means the case
    /// passed.
    pub divergences: Vec<Divergence>,
    /// Wall-clock per oracle stage, in execution order.
    pub timings: Vec<(&'static str, Duration)>,
}

impl CaseReport {
    /// `true` when no check failed.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Run `f` as one named oracle stage: open an observability span, time it,
/// append the wall-clock to `timings`.
fn timed<T>(
    name: &'static str,
    timings: &mut Vec<(&'static str, Duration)>,
    f: impl FnOnce() -> T,
) -> T {
    let _span = hcg_obs::span("oracle", name);
    let t0 = Instant::now();
    let out = f();
    timings.push((name, t0.elapsed()));
    out
}

/// Run every oracle check on one model.
pub fn run_case(model: &Model, cfg: &OracleConfig) -> CaseReport {
    let mut divergences = Vec::new();
    let mut timings = Vec::new();
    let lib = CodeLibrary::new();

    // Stage 1: compile the full generator × arch matrix.
    let programs = timed("compile", &mut timings, || {
        compile_matrix(model, cfg.mapping, &mut divergences)
    });

    // Stage 2: cost-model sanity on every program × compiler profile.
    timed("cost", &mut timings, || {
        for ((g, arch), prog) in &programs {
            for compiler in Compiler::ALL {
                let cm = CostModel::new(*arch, compiler);
                let cycles = cm.cycles(prog, &lib);
                let secs = cm.time_seconds(prog, &lib, 1);
                if cycles == 0 || !secs.is_finite() || secs <= 0.0 {
                    divergences.push(Divergence {
                        check: "cost",
                        detail: format!("{g} on {arch}/{compiler}: cycles={cycles} secs={secs}"),
                    });
                }
            }
        }
    });

    // Stage 3: numerical equivalence against the golden reference.
    timed("equivalence", &mut timings, || {
        check_equivalence(model, &programs, &lib, cfg, &mut divergences);
    });

    // Stage 4: validator cleanliness.
    timed("validate", &mut timings, || {
        for ((g, arch), prog) in &programs {
            for d in validate_all(prog, &lib) {
                divergences.push(Divergence {
                    check: "validate",
                    detail: format!("{g} on {arch}: {d}"),
                });
            }
        }
    });

    // Stage 5: lint gates — the model and every program must be
    // error-free under the analyzer.
    timed("lint", &mut timings, || {
        let model_report = hcg_analysis::lint_model(model);
        if model_report.has_errors() {
            divergences.push(Divergence {
                check: "lint-model",
                detail: format!("{} model lint errors", model_report.error_count()),
            });
        }
        for ((g, arch), prog) in &programs {
            let r = hcg_analysis::lint_program(prog, &lib);
            if r.has_errors() {
                divergences.push(Divergence {
                    check: "lint-program",
                    detail: format!("{g} on {arch}: {} lint errors", r.error_count()),
                });
            }
        }
    });

    // Stage 6: XML round-trip is the identity, up to byte-identical C.
    timed("xml-roundtrip", &mut timings, || {
        check_xml_roundtrip(model, &programs, cfg.mapping, &mut divergences);
    });

    // Stage 7: indexed and linear instruction selection agree.
    timed("indexed-selection", &mut timings, || {
        check_indexed_selection(model, &mut divergences);
    });

    // Stage 8: the compile matrix is thread-count invariant.
    timed("fleet-identity", &mut timings, || {
        check_fleet_identity(model, cfg.fleet_threads, cfg.mapping, &mut divergences);
    });

    CaseReport {
        divergences,
        timings,
    }
}

type ProgramMatrix = BTreeMap<(&'static str, Arch), Program>;

fn compile_matrix(
    model: &Model,
    mapping: MappingStrategy,
    divergences: &mut Vec<Divergence>,
) -> ProgramMatrix {
    let mut programs = ProgramMatrix::new();
    for g in ORACLE_GENERATORS {
        let generator = generator_for(g, mapping);
        for arch in ORACLE_ARCHES {
            match generator.generate(model, arch) {
                Ok(p) => {
                    programs.insert((g, arch), p);
                }
                Err(e) => divergences.push(Divergence {
                    check: "compile",
                    detail: format!("{g} on {arch}: {e}"),
                }),
            }
        }
    }
    programs
}

/// Shared seeded inputs for one step, keyed by inport name (the same
/// element ranges as the bench consistency check, kept small so integer
/// chains stay within every dtype).
pub fn random_inputs(model: &Model, rng: &mut StdRng) -> BTreeMap<String, Tensor> {
    let types = model.infer_types().expect("fuzz models are valid");
    let mut out = BTreeMap::new();
    for a in &model.actors {
        if a.kind != ActorKind::Inport {
            continue;
        }
        let ty = types.output(a.id, 0);
        let t = if ty.dtype.is_float() {
            let data: Vec<f64> = (0..ty.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Tensor::from_f64(ty, data).expect("sized")
        } else {
            let data: Vec<i64> = (0..ty.len()).map(|_| rng.gen_range(-100..100)).collect();
            Tensor::from_i64(ty, data).expect("sized")
        };
        out.insert(a.name.clone(), t);
    }
    out
}

fn check_equivalence(
    model: &Model,
    programs: &ProgramMatrix,
    lib: &CodeLibrary,
    cfg: &OracleConfig,
    divergences: &mut Vec<Divergence>,
) {
    let mut reference = match Reference::new(model) {
        Ok(r) => r,
        Err(e) => {
            divergences.push(Divergence {
                check: "equivalence",
                detail: format!("reference construction failed: {e}"),
            });
            return;
        }
    };
    let mut machines: Vec<((&'static str, Arch), Machine<'_>)> = programs
        .iter()
        .map(|(key, p)| (*key, Machine::new(p, lib)))
        .collect();

    let types = model.infer_types().expect("fuzz models are valid");
    let mut rng = StdRng::seed_from_u64(cfg.input_seed);
    for step in 0..cfg.steps {
        let inputs = random_inputs(model, &mut rng);
        let expected = match reference.step(&inputs) {
            Ok(e) => e,
            Err(e) => {
                divergences.push(Divergence {
                    check: "equivalence",
                    detail: format!("reference step {step} failed: {e}"),
                });
                return;
            }
        };
        for ((g, arch), m) in &mut machines {
            for (name, value) in &inputs {
                if let Err(e) = m.set_input(name, value) {
                    divergences.push(Divergence {
                        check: "equivalence",
                        detail: format!("{g} on {arch}: set_input {name}: {e}"),
                    });
                    return;
                }
            }
            if let Err(e) = m.step() {
                divergences.push(Divergence {
                    check: "equivalence",
                    detail: format!("{g} on {arch}: step {step} failed: {e}"),
                });
                return;
            }
            for (name, want) in &expected {
                let got = match m.read_buffer(name) {
                    Ok(t) => t,
                    Err(e) => {
                        divergences.push(Divergence {
                            check: "equivalence",
                            detail: format!("{g} on {arch}: read {name}: {e}"),
                        });
                        continue;
                    }
                };
                let is_float = model
                    .actor_by_name(name)
                    .map(|a| {
                        types
                            .inputs_of(model, a.id)
                            .first()
                            .map(|t| t.dtype.is_float())
                            .unwrap_or(true)
                    })
                    .unwrap_or(true);
                let scale = want.as_f64().iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
                let diff = got.max_abs_diff(want) / scale;
                let tol = if is_float { cfg.float_tolerance } else { 0.0 };
                if diff > tol || !diff.is_finite() {
                    divergences.push(Divergence {
                        check: "equivalence",
                        detail: format!(
                            "{g} on {arch}: outport {name} step {step}: relative diff {diff:e}"
                        ),
                    });
                }
            }
        }
    }
}

fn check_xml_roundtrip(
    model: &Model,
    programs: &ProgramMatrix,
    mapping: MappingStrategy,
    divergences: &mut Vec<Divergence>,
) {
    let xml = model_to_xml(model);
    let parsed = match model_from_xml(&xml) {
        Ok(m) => m,
        Err(e) => {
            divergences.push(Divergence {
                check: "xml-roundtrip",
                detail: format!("parse(emit(model)) failed: {e}"),
            });
            return;
        }
    };
    if parsed != *model {
        divergences.push(Divergence {
            check: "xml-roundtrip",
            detail: "parse(emit(model)) != model".to_owned(),
        });
        return;
    }
    // Byte-identical codegen for the round-tripped model.
    for ((g, arch), original) in programs {
        let prog = match generator_for(g, mapping).generate(&parsed, *arch) {
            Ok(p) => p,
            Err(e) => {
                divergences.push(Divergence {
                    check: "xml-roundtrip",
                    detail: format!("{g} on {arch}: recompile failed: {e}"),
                });
                continue;
            }
        };
        if to_c_source(&prog) != to_c_source(original) {
            divergences.push(Divergence {
                check: "xml-roundtrip",
                detail: format!("{g} on {arch}: C source differs after round-trip"),
            });
        }
    }
}

/// Candidate operand trees derived from the model's batch actors: every
/// batch op as a single-node tree, plus every producer→consumer pair of
/// batch actors as a depth-2 compound (the shapes Algorithm 2 actually
/// matches).
fn candidate_trees(model: &Model) -> Vec<(hcg_model::DataType, ValTree)> {
    let Ok(types) = model.infer_types() else {
        return Vec::new();
    };
    let dispatch = classify_all(model, &types);
    let batch_op = |id: hcg_model::ActorId| match &dispatch[id.0] {
        Dispatch::Batch { op, .. } => Some(*op),
        _ => None,
    };
    let leaves = |op: hcg_model::op::ElemOp, base: usize| -> Vec<ValTree> {
        (0..op.arity())
            .map(|k| ValTree::Leaf(DfgInput::External(base + k)))
            .collect()
    };

    let mut out = Vec::new();
    for a in &model.actors {
        let Some(op) = batch_op(a.id) else { continue };
        let dtype = types.output(a.id, 0).dtype;
        out.push((
            dtype,
            ValTree::Op {
                op,
                args: leaves(op, 0),
            },
        ));
    }
    for c in &model.connections {
        let (Some(inner_op), Some(outer_op)) = (batch_op(c.from.actor), batch_op(c.to.actor))
        else {
            continue;
        };
        let dtype = types.output(c.to.actor, 0).dtype;
        let inner = ValTree::Op {
            op: inner_op,
            args: leaves(inner_op, 0),
        };
        let args: Vec<ValTree> = (0..outer_op.arity())
            .map(|k| {
                if k == c.to.port {
                    inner.clone()
                } else {
                    ValTree::Leaf(DfgInput::External(inner_op.arity() + k))
                }
            })
            .collect();
        out.push((dtype, ValTree::Op { op: outer_op, args }));
    }
    out
}

fn check_indexed_selection(model: &Model, divergences: &mut Vec<Divergence>) {
    let trees = candidate_trees(model);
    for arch in ORACLE_ARCHES {
        let set = sets::builtin(arch);
        let index = InstrIndex::build(&set);
        for (dtype, tree) in &trees {
            let lanes = arch.lanes(*dtype);
            let linear = find_instruction(&set, *dtype, lanes, tree);
            let indexed = find_instruction_indexed(&set, &index, *dtype, lanes, tree);
            // `SimdInstr`/`InstrMatch` carry no `PartialEq`; the Debug
            // rendering is total over both, so it is the identity witness.
            let l = format!("{linear:?}");
            let i = format!("{indexed:?}");
            if l != i {
                divergences.push(Divergence {
                    check: "indexed-selection",
                    detail: format!("{arch} {dtype:?} {tree}: linear={l} indexed={i}"),
                });
            }
        }
    }
}

fn check_fleet_identity(
    model: &Model,
    threads: usize,
    mapping: MappingStrategy,
    divergences: &mut Vec<Divergence>,
) {
    let sources = |workers: usize| -> Vec<Result<String, String>> {
        let jobs: Vec<_> = ORACLE_GENERATORS
            .iter()
            .flat_map(|g| ORACLE_ARCHES.iter().map(move |arch| (*g, *arch)))
            .map(|(g, arch)| {
                move || match generator_for(g, mapping).generate(model, arch) {
                    Ok(p) => to_c_source(&p),
                    Err(e) => format!("compile error: {e}"),
                }
            })
            .collect();
        hcg_exec::run_jobs(workers, jobs)
            .into_iter()
            .map(|r| r.map_err(|p| p.to_string()))
            .collect()
    };
    let one = sources(1);
    let many = sources(threads.max(2));
    if one != many {
        divergences.push(Divergence {
            check: "fleet-identity",
            detail: format!("1-thread vs {}-thread sources differ", threads.max(2)),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_model, GenConfig};

    #[test]
    fn generated_models_pass_all_checks() {
        let cfg = OracleConfig::default();
        for seed in 0..12 {
            let m = generate_model(seed, &GenConfig::default());
            let r = run_case(&m, &cfg);
            assert!(r.passed(), "seed {seed} diverged: {:?}", r.divergences);
        }
    }

    #[test]
    fn library_models_pass_all_checks() {
        let cfg = OracleConfig::default();
        for m in [
            hcg_model::library::fig4_model(),
            hcg_model::library::fir_model(64, 4),
        ] {
            let r = run_case(&m, &cfg);
            assert!(r.passed(), "{} diverged: {:?}", m.name, r.divergences);
        }
    }

    #[test]
    fn beam_mapping_passes_all_checks() {
        let cfg = OracleConfig {
            mapping: MappingStrategy::Beam { width: 4 },
            ..OracleConfig::default()
        };
        for seed in 0..6 {
            let m = generate_model(seed, &GenConfig::default());
            let r = run_case(&m, &cfg);
            assert!(r.passed(), "seed {seed} diverged: {:?}", r.divergences);
        }
        let fir = hcg_model::library::fir_model(64, 4);
        let r = run_case(&fir, &cfg);
        assert!(r.passed(), "fir diverged: {:?}", r.divergences);
    }

    #[test]
    fn oracle_is_deterministic() {
        let cfg = OracleConfig::default();
        let m = generate_model(3, &GenConfig::default());
        let a = run_case(&m, &cfg);
        let b = run_case(&m, &cfg);
        assert_eq!(a.divergences, b.divergences);
    }

    #[test]
    fn stage_order_is_stable() {
        let m = generate_model(0, &GenConfig::default());
        let r = run_case(&m, &OracleConfig::default());
        let stages: Vec<&str> = r.timings.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            stages,
            [
                "compile",
                "cost",
                "equivalence",
                "validate",
                "lint",
                "xml-roundtrip",
                "indexed-selection",
                "fleet-identity"
            ]
        );
    }
}
