//! Delta-debugging shrinker for failing fuzz models.
//!
//! Given a model and a failure predicate, the shrinker greedily applies
//! small structural reductions — bypassing an actor, replacing a value by
//! a fresh inport, dropping sinks and dead producers — and keeps a
//! candidate only when it is *strictly smaller*, still builds into a
//! valid model, and still fails the predicate. Strict shrinkage per
//! accepted step bounds the loop, so shrinking always terminates.
//!
//! The predicate sees whole models, so it can be anything from "contains
//! an `Abd` actor" (the synthetic-miscompile demo) to "the differential
//! oracle reports a divergence" (the real fuzz loop).

use hcg_model::{ActorId, ActorKind, Model, ModelBuilder, Param, PortRef};
use std::collections::BTreeMap;

/// Counters describing one shrink run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate reductions tried (including rejected ones).
    pub attempts: usize,
    /// Reductions accepted (each removes at least one actor).
    pub accepted: usize,
    /// Actor count of the original failing model.
    pub initial_actors: usize,
    /// Actor count of the minimized model.
    pub final_actors: usize,
}

/// Minimize `model` while `fails` keeps returning `true`.
///
/// Returns the smallest model found plus [`ShrinkStats`]. The input model
/// itself is returned unchanged when it does not fail the predicate (there
/// is nothing to preserve while shrinking) or when no reduction applies.
pub fn shrink(model: &Model, fails: &dyn Fn(&Model) -> bool) -> (Model, ShrinkStats) {
    let mut stats = ShrinkStats {
        attempts: 0,
        accepted: 0,
        initial_actors: model.actors.len(),
        final_actors: model.actors.len(),
    };
    if !fails(model) {
        return (model.clone(), stats);
    }

    let mut current = model.clone();
    loop {
        let mut improved = false;
        for candidate in reductions(&current) {
            stats.attempts += 1;
            if candidate.actors.len() < current.actors.len() && fails(&candidate) {
                current = candidate;
                stats.accepted += 1;
                improved = true;
                break; // restart the sweep on the smaller model
            }
        }
        if !improved {
            break;
        }
    }
    stats.final_actors = current.actors.len();
    (current, stats)
}

/// Enumerate all valid one-step reductions of `model`, smallest-result
/// first. Every returned model builds (`ModelBuilder::build` succeeded),
/// so callers only need to re-check the failure predicate.
fn reductions(model: &Model) -> Vec<Model> {
    let mut out = Vec::new();

    // 1. Drop a dead producer: any single-output actor nobody consumes.
    //    (Dropping outports below cascades through this rule.)
    for a in &model.actors {
        if a.kind.output_count() == 1 && model.consumers(PortRef::new(a.id, 0)).is_empty() {
            push_if_valid(&mut out, remove_actors(model, &[a.id], &[]));
        }
    }

    // 2. Drop one outport, if more than one remains (keeping at least one
    //    sink keeps the model meaningful to every oracle).
    let outports: Vec<ActorId> = model
        .actors
        .iter()
        .filter(|a| a.kind == ActorKind::Outport)
        .map(|a| a.id)
        .collect();
    if outports.len() > 1 {
        for &o in &outports {
            push_if_valid(&mut out, remove_actors(model, &[o], &[]));
        }
    }

    // 3. Bypass an actor: rewire the consumers of its output to the
    //    producer of one of its inputs, then drop the actor. Only type-
    //    preserving bypasses survive the rebuild.
    for a in &model.actors {
        if a.kind.output_count() != 1 || a.kind.input_count() == 0 {
            continue;
        }
        for j in 0..a.kind.input_count() {
            let Some(src) = producer(model, PortRef::new(a.id, j)) else {
                continue;
            };
            push_if_valid(
                &mut out,
                remove_actors(model, &[a.id], &[(PortRef::new(a.id, 0), src)]),
            );
        }
    }

    // 4. Promote an actor's output to a fresh inport of the same type,
    //    cutting off its whole input subtree (GC'd by rule 1 over the
    //    following sweeps).
    if let Ok(types) = model.infer_types() {
        for a in &model.actors {
            if a.kind.output_count() != 1
                || matches!(a.kind, ActorKind::Inport | ActorKind::Constant)
            {
                continue;
            }
            let ty = types.output(a.id, 0);
            push_if_valid(&mut out, promote_to_inport(model, a.id, ty));
        }
    }

    out
}

fn push_if_valid(out: &mut Vec<Model>, candidate: Option<Model>) {
    if let Some(m) = candidate {
        out.push(m);
    }
}

/// Producer of the value feeding input port `input`, if connected.
fn producer(model: &Model, input: PortRef) -> Option<PortRef> {
    model
        .connections
        .iter()
        .find(|c| c.to == input)
        .map(|c| c.from)
}

/// Rebuild `model` without the actors in `drop`, applying `rewires`
/// (`from` port → replacement port) to surviving connections. Returns
/// `None` when the candidate does not build.
fn remove_actors(model: &Model, drop: &[ActorId], rewires: &[(PortRef, PortRef)]) -> Option<Model> {
    let keep: Vec<&hcg_model::Actor> = model
        .actors
        .iter()
        .filter(|a| !drop.contains(&a.id))
        .collect();
    let renumber: BTreeMap<ActorId, ActorId> = keep
        .iter()
        .enumerate()
        .map(|(i, a)| (a.id, ActorId(i)))
        .collect();

    let mut b = ModelBuilder::new(model.name.clone());
    for a in &keep {
        let id = b.add_actor(a.name.clone(), a.kind);
        debug_assert_eq!(id, renumber[&a.id]);
        for (k, v) in &a.params {
            b.set_param(id, k.clone(), v.clone());
        }
    }
    for c in &model.connections {
        let from = rewires
            .iter()
            .find(|(old, _)| *old == c.from)
            .map(|(_, new)| *new)
            .unwrap_or(c.from);
        let (Some(&nf), Some(&nt)) = (renumber.get(&from.actor), renumber.get(&c.to.actor)) else {
            continue; // connection touched a dropped actor
        };
        b.connect(nf, from.port, nt, c.to.port);
    }
    b.build().ok()
}

/// Replace actor `id` by a fresh `Inport` of type `ty`; its input
/// connections disappear, so its former operand subtree becomes dead.
fn promote_to_inport(model: &Model, id: ActorId, ty: hcg_model::SignalType) -> Option<Model> {
    let mut b = ModelBuilder::new(model.name.clone());
    for a in &model.actors {
        if a.id == id {
            let nid = b.add_actor(format!("pin_{}", a.name), ActorKind::Inport);
            b.set_param(nid, "type", Param::Str(ty.to_string()));
        } else {
            let nid = b.add_actor(a.name.clone(), a.kind);
            debug_assert_eq!(nid, a.id);
            for (k, v) in &a.params {
                b.set_param(nid, k.clone(), v.clone());
            }
        }
    }
    for c in &model.connections {
        if c.to.actor == id {
            continue; // the inport takes no inputs
        }
        b.connect(c.from.actor, c.from.port, c.to.actor, c.to.port);
    }
    b.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_model, GenConfig};

    fn has_kind(m: &Model, kind: ActorKind) -> bool {
        m.actors.iter().any(|a| a.kind == kind)
    }

    #[test]
    fn shrink_preserves_predicate_and_validity() {
        let cfg = GenConfig::default();
        let fails = |m: &Model| has_kind(m, ActorKind::Mul);
        let mut shrunk_any = false;
        for seed in 0..60 {
            let m = generate_model(seed, &cfg);
            if !fails(&m) {
                continue;
            }
            let (small, stats) = shrink(&m, &fails);
            assert!(fails(&small), "seed {seed}: predicate lost");
            small.infer_types().unwrap();
            assert!(stats.final_actors <= stats.initial_actors);
            if stats.final_actors < stats.initial_actors {
                shrunk_any = true;
            }
        }
        assert!(shrunk_any, "no model shrank at all");
    }

    #[test]
    fn non_failing_model_returned_unchanged() {
        let m = generate_model(0, &GenConfig::default());
        let (same, stats) = shrink(&m, &|_| false);
        assert_eq!(same, m);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn shrink_is_deterministic() {
        let cfg = GenConfig::default();
        let fails = |m: &Model| has_kind(m, ActorKind::Add);
        for seed in 0..20 {
            let m = generate_model(seed, &cfg);
            let (a, _) = shrink(&m, &fails);
            let (b, _) = shrink(&m, &fails);
            assert_eq!(a, b, "seed {seed}");
        }
    }
}
