//! Seeded, deterministic, size-bounded typed random model generator.
//!
//! The generator grows a model forward as a DAG: a pool of typed values
//! (actor output ports) starts with the inports, every new actor consumes
//! values already in the pool, and every value that ends up without a
//! consumer is routed into an `Outport`. By construction the result is
//!
//! * **structurally valid** — every input port driven exactly once, ids
//!   dense, names unique;
//! * **type- and scale-valid** — operands are drawn from per-dtype pools,
//!   float-only / int-only kinds only ever see legal element types;
//! * **schedulable** — connections only point forward (`UnitDelay`s are
//!   feed-forward here), so no algebraic loops exist;
//! * **lint-clean** — every actor reaches an outport, so the analyzer's
//!   reachability sweep stays quiet;
//! * **numerically tame** — `Div`, `Recp` and `Sqrt` are excluded and
//!   float-to-int casts are off by default, so the differential oracle
//!   never has to adjudicate division-by-zero or NaN folklore.
//!
//! The same `(seed, config)` pair always produces the same [`Model`].

use hcg_model::{ActorId, ActorKind, DataType, Model, ModelBuilder, Param, SignalType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Relative weights of the actor categories the generator can draw.
///
/// A category with weight `0` is never drawn. Categories that are
/// infeasible at a given draw (e.g. a shift when no integer value exists
/// yet) are skipped regardless of weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpWeights {
    /// Element-wise binary ops (`Add`/`Sub`/`Mul`/`Min`/`Max`/`Abd` plus
    /// the bitwise family on integers).
    pub binary: u32,
    /// Element-wise unary ops (`Abs`, `BitNot`, `Neg`).
    pub unary: u32,
    /// Constant shifts (`Shr`/`Shl`, integers only).
    pub shift: u32,
    /// Feed-forward `UnitDelay` with a declared type.
    pub delay: u32,
    /// `Gain` by a scalar factor (floats only).
    pub gain: u32,
    /// `Saturate` clamp (floats only).
    pub saturate: u32,
    /// Element-wise `Cast` to a different dtype.
    pub cast: u32,
    /// A fresh `Constant` source.
    pub constant: u32,
}

impl Default for OpWeights {
    fn default() -> Self {
        OpWeights {
            binary: 10,
            unary: 3,
            shift: 2,
            delay: 2,
            gain: 2,
            saturate: 1,
            cast: 2,
            constant: 2,
        }
    }
}

/// Configuration of the random model generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Maximum non-port actors added on top of the inports/outports.
    pub max_ops: usize,
    /// Maximum inport count (at least 1 is always created).
    pub max_inports: usize,
    /// Maximum vector length (lengths are drawn from `2..=max_lanes`,
    /// deliberately including lengths that are not SIMD-width multiples so
    /// tail handling is exercised).
    pub max_lanes: usize,
    /// Element types the generator may draw. `U64` is excluded by default
    /// only to keep input synthesis simple; any [`DataType`] is accepted.
    pub dtypes: Vec<DataType>,
    /// Category weights.
    pub weights: OpWeights,
    /// Allow `Cast` from float to integer dtypes (off by default: the
    /// truncation direction is the one place generator semantics could
    /// legitimately disagree, which would drown real divergences).
    pub allow_float_to_int_cast: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_ops: 14,
            max_inports: 3,
            max_lanes: 32,
            dtypes: vec![
                DataType::I8,
                DataType::I16,
                DataType::I32,
                DataType::I64,
                DataType::U8,
                DataType::U16,
                DataType::U32,
                DataType::F32,
                DataType::F64,
            ],
            weights: OpWeights::default(),
            allow_float_to_int_cast: false,
        }
    }
}

/// Binary element-wise kinds legal on every dtype.
const BINARY_ANY: [ActorKind; 6] = [
    ActorKind::Add,
    ActorKind::Sub,
    ActorKind::Mul,
    ActorKind::Min,
    ActorKind::Max,
    ActorKind::Abd,
];

/// Binary kinds additionally legal on integers.
const BINARY_INT: [ActorKind; 3] = [ActorKind::BitAnd, ActorKind::BitOr, ActorKind::BitXor];

/// Generate one deterministic random model for `seed`.
///
/// The returned model always validates, type-checks and schedules; the
/// generator asserts this, so a failure here is a generator bug, not a
/// fuzz finding.
///
/// # Panics
///
/// Panics if `cfg` is degenerate (empty dtype list) or if the generated
/// model fails validation — both are bugs, not fuzz findings.
pub fn generate_model(seed: u64, cfg: &GenConfig) -> Model {
    assert!(
        !cfg.dtypes.is_empty(),
        "GenConfig::dtypes must not be empty"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let lanes = rng.gen_range(2..=cfg.max_lanes.max(2));
    let base_dtype = cfg.dtypes[rng.gen_range(0..cfg.dtypes.len())];

    let mut b = ModelBuilder::new(format!("Fuzz_{seed}"));
    // Per-dtype pools of producible values (actor output port 0). All
    // values share one vector length, so scale validity is structural.
    let mut pools: BTreeMap<DataType, Vec<ActorId>> = BTreeMap::new();
    let n_inports = rng.gen_range(1..=cfg.max_inports.max(1));
    for i in 0..n_inports {
        let id = b.inport(format!("in{i}"), SignalType::vector(base_dtype, lanes));
        pools.entry(base_dtype).or_default().push(id);
    }

    let n_ops = rng.gen_range(1..=cfg.max_ops.max(1));
    for i in 0..n_ops {
        grow(&mut b, &mut rng, &mut pools, cfg, lanes, i);
    }

    // Route every consumer-less value into an outport so each actor
    // reaches a sink (the analyzer's reachability lint stays clean).
    let model = b.build_unchecked();
    let mut b = rebuilder(&model);
    let mut out = 0usize;
    for a in &model.actors {
        if a.kind.output_count() == 1
            && model.consumers(hcg_model::PortRef::new(a.id, 0)).is_empty()
        {
            let o = b.add_actor(format!("out{out}"), ActorKind::Outport);
            b.connect(a.id, 0, o, 0);
            out += 1;
        }
    }
    b.build()
        .expect("generator invariant: fuzz models are always valid")
}

/// Re-seed a builder with an existing model's actors and connections.
fn rebuilder(model: &Model) -> ModelBuilder {
    let mut b = ModelBuilder::new(model.name.clone());
    for a in &model.actors {
        let id = b.add_actor(a.name.clone(), a.kind);
        debug_assert_eq!(id, a.id);
        for (k, v) in &a.params {
            b.set_param(id, k.clone(), v.clone());
        }
    }
    for c in &model.connections {
        b.connect(c.from.actor, c.from.port, c.to.actor, c.to.port);
    }
    b
}

/// One weighted category draw; skips categories that are infeasible given
/// the current pools.
fn grow(
    b: &mut ModelBuilder,
    rng: &mut StdRng,
    pools: &mut BTreeMap<DataType, Vec<ActorId>>,
    cfg: &GenConfig,
    lanes: usize,
    i: usize,
) {
    let w = &cfg.weights;
    let int_pool_exists = pools.keys().any(|d| d.is_int());
    let float_pool_exists = pools.keys().any(|d| d.is_float());
    let signed_pool_exists = pools.keys().any(|d| d.is_signed());

    // (weight, category tag) for every feasible category.
    let mut menu: Vec<(u32, u8)> = Vec::new();
    let mut offer = |weight: u32, tag: u8, feasible: bool| {
        if weight > 0 && feasible {
            menu.push((weight, tag));
        }
    };
    offer(w.binary, 0, true);
    offer(
        w.unary,
        1,
        signed_pool_exists || float_pool_exists || int_pool_exists,
    );
    offer(w.shift, 2, int_pool_exists);
    offer(w.delay, 3, true);
    offer(w.gain, 4, float_pool_exists);
    offer(w.saturate, 5, float_pool_exists);
    offer(w.cast, 6, cfg.dtypes.len() > 1);
    offer(w.constant, 7, true);

    let total: u32 = menu.iter().map(|(w, _)| w).sum();
    let mut roll = rng.gen_range(0..total.max(1));
    let mut tag = menu[0].1;
    for (weight, t) in &menu {
        if roll < *weight {
            tag = *t;
            break;
        }
        roll -= weight;
    }

    // Pick a value from the pool of a dtype satisfying `want`.
    let pick = |rng: &mut StdRng,
                pools: &BTreeMap<DataType, Vec<ActorId>>,
                want: &dyn Fn(DataType) -> bool|
     -> Option<(DataType, ActorId)> {
        let keys: Vec<DataType> = pools.keys().copied().filter(|d| want(*d)).collect();
        if keys.is_empty() {
            return None;
        }
        let d = keys[rng.gen_range(0..keys.len())];
        let vals = &pools[&d];
        Some((d, vals[rng.gen_range(0..vals.len())]))
    };

    match tag {
        // Binary element-wise op on two same-dtype operands.
        0 => {
            let (d, s0) = pick(rng, pools, &|_| true).expect("pools start non-empty");
            let s1 = {
                let vals = &pools[&d];
                vals[rng.gen_range(0..vals.len())]
            };
            let kind = if d.is_int() && rng.gen_range(0u32..4) == 0 {
                BINARY_INT[rng.gen_range(0..BINARY_INT.len())]
            } else {
                BINARY_ANY[rng.gen_range(0..BINARY_ANY.len())]
            };
            let a = b.add_actor(format!("b{i}"), kind);
            b.connect(s0, 0, a, 0);
            b.connect(s1, 0, a, 1);
            pools.entry(d).or_default().push(a);
        }
        // Unary op. Abs needs signed/float, BitNot needs int, Neg needs
        // signed/float; fall back to a delay when nothing fits.
        1 => {
            let (d, src) = pick(rng, pools, &|_| true).expect("pools start non-empty");
            let kind = if d.is_float() {
                [ActorKind::Abs, ActorKind::Neg][rng.gen_range(0..2usize)]
            } else if d.is_signed() {
                [ActorKind::Abs, ActorKind::Neg, ActorKind::BitNot][rng.gen_range(0..3usize)]
            } else {
                ActorKind::BitNot
            };
            let a = b.add_actor(format!("u{i}"), kind);
            b.connect(src, 0, a, 0);
            pools.entry(d).or_default().push(a);
        }
        // Constant shift on an integer value.
        2 => {
            let (d, src) = pick(rng, pools, &|d| d.is_int()).expect("feasibility checked above");
            let kind = [ActorKind::Shr, ActorKind::Shl][rng.gen_range(0..2usize)];
            let amount = rng.gen_range(0..=7i64.min(d.bit_width() as i64 - 1));
            let a = b.shift(format!("sh{i}"), kind, amount);
            b.connect(src, 0, a, 0);
            pools.entry(d).or_default().push(a);
        }
        // Feed-forward unit delay with a declared type.
        3 => {
            let (d, src) = pick(rng, pools, &|_| true).expect("pools start non-empty");
            let a = b.unit_delay(format!("z{i}"), Some(SignalType::vector(d, lanes)));
            b.connect(src, 0, a, 0);
            pools.entry(d).or_default().push(a);
        }
        // Gain by a scalar factor (floats only).
        4 => {
            let (d, src) = pick(rng, pools, &|d| d.is_float()).expect("feasibility checked above");
            // Quarter-steps keep the textual form short; any f64 would
            // round-trip losslessly regardless.
            let factor = (rng.gen_range(-8i64..=8) as f64) / 4.0;
            let a = b.gain(format!("g{i}"), factor);
            b.connect(src, 0, a, 0);
            pools.entry(d).or_default().push(a);
        }
        // Saturate clamp (floats only).
        5 => {
            let (d, src) = pick(rng, pools, &|d| d.is_float()).expect("feasibility checked above");
            let lo = (rng.gen_range(-8i64..0) as f64) / 4.0;
            let hi = (rng.gen_range(1i64..=8) as f64) / 4.0;
            let a = b.add_actor(format!("sat{i}"), ActorKind::Saturate);
            b.set_param(a, "min", Param::Float(lo));
            b.set_param(a, "max", Param::Float(hi));
            b.connect(src, 0, a, 0);
            pools.entry(d).or_default().push(a);
        }
        // Cast into a different dtype domain.
        6 => {
            let (d, src) = pick(rng, pools, &|_| true).expect("pools start non-empty");
            let legal: Vec<DataType> = cfg
                .dtypes
                .iter()
                .copied()
                .filter(|to| {
                    *to != d && (cfg.allow_float_to_int_cast || !(d.is_float() && to.is_int()))
                })
                .collect();
            if legal.is_empty() {
                // Nothing to cast to (e.g. single-dtype config): emit a
                // delay instead so the draw still makes progress.
                let a = b.unit_delay(format!("z{i}"), Some(SignalType::vector(d, lanes)));
                b.connect(src, 0, a, 0);
                pools.entry(d).or_default().push(a);
                return;
            }
            let to = legal[rng.gen_range(0..legal.len())];
            let a = b.add_actor(format!("c{i}"), ActorKind::Cast);
            b.set_param(a, "to", Param::Str(to.name().to_owned()));
            b.connect(src, 0, a, 0);
            pools.entry(to).or_default().push(a);
        }
        // Fresh constant source.
        _ => {
            let d = cfg.dtypes[rng.gen_range(0..cfg.dtypes.len())];
            let values: Vec<f64> = (0..lanes)
                .map(|_| {
                    if d.is_float() {
                        (rng.gen_range(-16i64..=16) as f64) / 8.0
                    } else if d.is_signed() {
                        rng.gen_range(-50i64..=50) as f64
                    } else {
                        rng.gen_range(0i64..=100) as f64
                    }
                })
                .collect();
            let a = b.constant(format!("k{i}"), SignalType::vector(d, lanes), values);
            pools.entry(d).or_default().push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::schedule::schedule;

    #[test]
    fn many_seeds_validate_and_schedule() {
        let cfg = GenConfig::default();
        for seed in 0..300 {
            let m = generate_model(seed, &cfg);
            m.infer_types()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            schedule(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig::default();
        for seed in [0, 1, 7, 99, 12345] {
            assert_eq!(generate_model(seed, &cfg), generate_model(seed, &cfg));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let distinct: std::collections::BTreeSet<String> = (0..50)
            .map(|s| hcg_model::parser::model_to_xml(&generate_model(s, &cfg)))
            .collect();
        assert!(
            distinct.len() > 40,
            "only {} distinct models",
            distinct.len()
        );
    }

    #[test]
    fn size_bounds_respected() {
        let cfg = GenConfig {
            max_ops: 5,
            max_inports: 2,
            ..GenConfig::default()
        };
        for seed in 0..100 {
            let m = generate_model(seed, &cfg);
            let non_port = m
                .actors
                .iter()
                .filter(|a| !matches!(a.kind, ActorKind::Inport | ActorKind::Outport))
                .count();
            // max_ops ops plus constants injected by the op draws.
            assert!(non_port <= cfg.max_ops, "seed {seed}: {non_port} ops");
        }
    }

    #[test]
    fn every_actor_reaches_an_outport() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let m = generate_model(seed, &cfg);
            let report = hcg_analysis::lint_model(&m);
            assert!(
                !report.has(hcg_analysis::LintCode::UnreachableActor),
                "seed {seed}:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn single_dtype_config_still_grows() {
        let cfg = GenConfig {
            dtypes: vec![DataType::I32],
            ..GenConfig::default()
        };
        for seed in 0..40 {
            let m = generate_model(seed, &cfg);
            m.infer_types().unwrap();
        }
    }
}
