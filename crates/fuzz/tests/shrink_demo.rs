//! The shrinker demo of the acceptance criteria: inject a *synthetic*
//! miscompile — a test-only oracle that declares any model containing an
//! `Abd` actor "failing" — and prove the delta-debugging shrinker reduces
//! a real generated model to a ≤ 5-actor repro that is committed to the
//! corpus and replayable from it.

use hcg_fuzz::corpus::{corpus_dir, load_corpus};
use hcg_fuzz::gen::{generate_model, GenConfig};
use hcg_fuzz::oracle::{run_case, OracleConfig};
use hcg_fuzz::shrink::shrink;
use hcg_model::{ActorKind, Model};

/// The synthetic miscompile: "any model with an `Abd` actor is broken".
fn synthetic_miscompile(m: &Model) -> bool {
    m.actors.iter().any(|a| a.kind == ActorKind::Abd)
}

/// Deterministically pick the first seeded model that trips the synthetic
/// oracle and shrink it.
fn demo_shrink() -> (u64, Model, Model, hcg_fuzz::ShrinkStats) {
    let cfg = GenConfig::default();
    let seed = (0..500)
        .find(|&s| synthetic_miscompile(&generate_model(s, &cfg)))
        .expect("some seed generates an Abd within 500 tries");
    let model = generate_model(seed, &cfg);
    let (small, stats) = shrink(&model, &synthetic_miscompile);
    (seed, model, small, stats)
}

#[test]
fn shrinker_reduces_synthetic_miscompile_to_at_most_5_actors() {
    let (seed, model, small, stats) = demo_shrink();
    assert!(
        synthetic_miscompile(&small),
        "seed {seed}: shrinking lost the failure"
    );
    assert!(
        small.actors.len() <= 5,
        "seed {seed}: {} actors remain (from {})",
        small.actors.len(),
        model.actors.len()
    );
    assert!(stats.accepted > 0, "seed {seed}: nothing was reduced");
    assert_eq!(stats.final_actors, small.actors.len());
    // The minimized model is still a *valid* model — shrinking must never
    // leave the supported vocabulary.
    small.infer_types().expect("minimized model type-checks");
    hcg_model::schedule::schedule(&small).expect("minimized model schedules");
}

#[test]
fn minimized_repro_is_committed_and_replayable() {
    let (_, _, small, _) = demo_shrink();
    let corpus = load_corpus(&corpus_dir()).expect("committed corpus loads");
    let (_, committed) = corpus
        .iter()
        .find(|(name, _)| name == "abd_demo.xml")
        .expect("abd_demo.xml is committed to crates/fuzz/corpus/");
    // Replaying the committed XML reproduces the synthetic failure...
    assert!(
        synthetic_miscompile(committed),
        "committed repro no longer trips the synthetic oracle"
    );
    // ...and byte-determinism means it is exactly today's shrink result.
    assert_eq!(
        *committed, small,
        "committed repro drifted from the deterministic shrink output; \
         regenerate with `cargo test -p hcg-fuzz --test shrink_demo -- --ignored`"
    );
    // The repro is only *synthetically* broken: the real differential
    // oracle must be clean on it, so corpus replay keeps passing.
    let report = run_case(committed, &OracleConfig::default());
    assert!(report.passed(), "divergences: {:?}", report.divergences);
}

/// Regenerate the committed demo repro after an intentional generator or
/// shrinker change: `cargo test -p hcg-fuzz --test shrink_demo -- --ignored`.
#[test]
#[ignore]
fn regenerate_committed_demo_repro() {
    let (_, _, small, _) = demo_shrink();
    let path = hcg_fuzz::corpus::write_repro(&corpus_dir(), "abd_demo", &small).unwrap();
    eprintln!("wrote {}", path.display());
}
