//! `MappingStrategy::Beam { width: 1 }` is *defined* as byte-identical to
//! `Greedy` (the dispatcher routes both to the same mapping loop). These
//! tests pin the definition end-to-end: identical C source across every
//! bundled model × generator × architecture, and across a swath of
//! fuzz-generated models.

use hcg_core::emit::to_c_source;
use hcg_core::MappingStrategy;
use hcg_fuzz::gen::{generate_model, GenConfig};
use hcg_fuzz::oracle::{generator_for, ORACLE_GENERATORS};
use hcg_isa::Arch;
use hcg_model::library;
use proptest::prelude::*;

#[test]
fn beam1_identical_to_greedy_on_bundled_models() {
    for model in library::paper_benchmarks() {
        for g in ORACLE_GENERATORS {
            for arch in Arch::ALL {
                let greedy = generator_for(g, MappingStrategy::Greedy)
                    .generate(&model, arch)
                    .unwrap_or_else(|e| panic!("{} {g} on {arch}: {e}", model.name));
                let beam1 = generator_for(g, MappingStrategy::Beam { width: 1 })
                    .generate(&model, arch)
                    .unwrap_or_else(|e| panic!("{} {g} on {arch}: {e}", model.name));
                assert_eq!(
                    to_c_source(&greedy),
                    to_c_source(&beam1),
                    "{} / {g} on {arch}",
                    model.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The identity also holds on generator-produced random models (where
    /// region shapes are far more varied than the bundled library).
    #[test]
    fn beam1_identical_to_greedy_on_generated_models(seed in 0u64..5000) {
        let m = generate_model(seed, &GenConfig::default());
        for arch in Arch::ALL {
            let greedy = generator_for("hcg", MappingStrategy::Greedy)
                .generate(&m, arch)
                .expect("generated models compile");
            let beam1 = generator_for("hcg", MappingStrategy::Beam { width: 1 })
                .generate(&m, arch)
                .expect("generated models compile");
            prop_assert_eq!(
                to_c_source(&greedy),
                to_c_source(&beam1),
                "seed {} on {}",
                seed,
                arch
            );
        }
    }

    /// A wide beam is never *worse*: it seeds with the greedy plan and only
    /// replaces it on strict cost improvement, so under the builtin cost
    /// tables (where greedy is optimal on this vocabulary) the program is
    /// byte-identical at any width.
    #[test]
    fn wide_beam_matches_greedy_under_builtin_costs(seed in 0u64..2000, width in 2usize..6) {
        let m = generate_model(seed, &GenConfig::default());
        let greedy = generator_for("hcg", MappingStrategy::Greedy)
            .generate(&m, Arch::Neon128)
            .expect("generated models compile");
        let beam = generator_for("hcg", MappingStrategy::Beam { width })
            .generate(&m, Arch::Neon128)
            .expect("generated models compile");
        prop_assert_eq!(to_c_source(&greedy), to_c_source(&beam));
    }
}
