//! Property tests over generator-produced models: the XML round trip is
//! the identity, both on the model itself and — the stronger claim — on
//! the C source every generator emits for it.

use hcg_core::emit::to_c_source;
use hcg_fuzz::gen::{generate_model, GenConfig};
use hcg_fuzz::oracle::{generator_named, ORACLE_GENERATORS};
use hcg_isa::Arch;
use hcg_model::parser::{model_from_xml, model_to_xml};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// parse(emit(model)) reproduces the model exactly.
    #[test]
    fn model_xml_roundtrip(seed in 0u64..5000) {
        let m = generate_model(seed, &GenConfig::default());
        let back = model_from_xml(&model_to_xml(&m)).expect("emitted XML parses");
        prop_assert_eq!(back, m);
    }

    /// Emitting twice yields identical bytes (the emitter has no hidden
    /// state or ordering nondeterminism).
    #[test]
    fn model_xml_emit_is_stable(seed in 0u64..5000) {
        let m = generate_model(seed, &GenConfig::default());
        prop_assert_eq!(model_to_xml(&m), model_to_xml(&m));
    }

    /// The round-tripped model compiles to byte-identical C through all
    /// three generators.
    #[test]
    fn roundtrip_codegen_is_byte_identical(seed in 0u64..2000) {
        let m = generate_model(seed, &GenConfig::default());
        let back = model_from_xml(&model_to_xml(&m)).expect("parses");
        for g in ORACLE_GENERATORS {
            let direct = generator_named(g)
                .generate(&m, Arch::Neon128)
                .expect("generated models compile");
            let via_xml = generator_named(g)
                .generate(&back, Arch::Neon128)
                .expect("round-tripped models compile");
            prop_assert_eq!(
                to_c_source(&direct),
                to_c_source(&via_xml),
                "generator {} diverged after XML round-trip on seed {}",
                g,
                seed
            );
        }
    }

    /// Generator configs with tighter bounds still only produce valid,
    /// schedulable models (the bounds are respected, not just usually met).
    #[test]
    fn bounded_configs_stay_valid(seed in 0u64..3000, max_ops in 1usize..8, lanes in 2usize..16) {
        let cfg = GenConfig { max_ops, max_lanes: lanes, ..GenConfig::default() };
        let m = generate_model(seed, &cfg);
        m.infer_types().expect("types resolve");
        hcg_model::schedule::schedule(&m).expect("schedules");
        let non_port = m.actors.iter()
            .filter(|a| !matches!(a.kind, hcg_model::ActorKind::Inport | hcg_model::ActorKind::Outport))
            .count();
        prop_assert!(non_port <= max_ops);
    }
}
