//! Tier-1 corpus replay: every committed repro must load, round-trip,
//! and run clean through the full differential oracle. A repro is
//! committed once its underlying bug is fixed (or, for the synthetic
//! demo, never had a real one), so replay failing means a regression.

use hcg_fuzz::corpus::{corpus_dir, load_corpus};
use hcg_fuzz::oracle::{run_case, OracleConfig};
use hcg_model::parser::{model_from_xml, model_to_xml};

#[test]
fn corpus_is_nonempty_and_loads() {
    let corpus = load_corpus(&corpus_dir()).expect("corpus loads");
    assert!(
        !corpus.is_empty(),
        "crates/fuzz/corpus/ must hold at least the shrinker demo repro"
    );
}

#[test]
fn every_committed_repro_replays_clean() {
    let cfg = OracleConfig::default();
    for (name, model) in load_corpus(&corpus_dir()).expect("corpus loads") {
        let report = run_case(&model, &cfg);
        assert!(
            report.passed(),
            "{name}: corpus replay diverged: {:?}",
            report.divergences
        );
    }
}

#[test]
fn committed_repros_roundtrip_byte_stable() {
    for (name, model) in load_corpus(&corpus_dir()).expect("corpus loads") {
        let emitted = model_to_xml(&model);
        let back = model_from_xml(&emitted).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, model, "{name}: XML round trip not the identity");
        // And the on-disk bytes are exactly what the emitter produces, so
        // `write_repro` output never churns in review.
        let on_disk = std::fs::read_to_string(corpus_dir().join(&name)).expect("readable");
        assert_eq!(
            on_disk, emitted,
            "{name}: on-disk bytes differ from emitter output"
        );
    }
}
