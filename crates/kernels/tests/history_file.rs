//! Algorithm 1 selection-history persistence across process runs.

use hcg_kernels::{Autotuner, CodeLibrary, KernelSize, Meter};
use hcg_model::{ActorKind, DataType};

#[test]
fn history_survives_disk_roundtrip() {
    let lib = CodeLibrary::new();
    let path = std::env::temp_dir().join(format!("hcg_history_{}.txt", std::process::id()));

    let mut first = Autotuner::new(Meter::OpCount);
    first
        .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))
        .expect("selects");
    first
        .select(
            &lib,
            ActorKind::Conv,
            DataType::F64,
            &KernelSize(vec![512, 64]),
        )
        .expect("selects");
    first.save_history_file(&path).expect("saves");

    let mut second = Autotuner::new(Meter::OpCount);
    second.load_history_file(&path).expect("loads");
    assert_eq!(second.history_len(), 2);
    // A warm select on the restored tuner hits the history.
    let (kernel, from_history) = second
        .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))
        .expect("selects");
    assert!(from_history);
    assert_eq!(kernel.name, "radix4");
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_history_file_is_fine() {
    let mut tuner = Autotuner::new(Meter::OpCount);
    tuner
        .load_history_file("/definitely/not/here.txt")
        .expect("missing file treated as empty history");
    assert_eq!(tuner.history_len(), 0);
}
