//! Property tests for the kernel library: transform identities,
//! convolution algebra, matrix invariants and Algorithm 1's contract.

use hcg_kernels::{
    conv, dct,
    fft::{self, Direction},
    from_interleaved, matrix, to_interleaved, Autotuner, CodeLibrary, Complex64, KernelSize, Meter,
};
use hcg_model::{ActorKind, DataType};
use proptest::prelude::*;

fn signal(n: usize, seed: i64) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = (i as i64 + seed) as f64;
            Complex64::new((0.31 * t).sin(), (0.17 * t).cos() * 0.5)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every FFT algorithm that accepts a length agrees with the naive DFT.
    #[test]
    fn ffts_agree_with_dft(n in 1usize..150, seed in 0i64..50) {
        let x = signal(n, seed);
        let reference = fft::dft_naive(&x, Direction::Forward);
        let mixed = fft::fft_mixed(&x, Direction::Forward);
        prop_assert!(hcg_kernels::max_diff(&reference, &mixed) < 1e-6);
        let blu = fft::fft_bluestein(&x, Direction::Forward);
        prop_assert!(hcg_kernels::max_diff(&reference, &blu) < 1e-6);
        if fft::is_pow2(n) {
            let r2 = fft::fft_radix2(&x, Direction::Forward);
            prop_assert!(hcg_kernels::max_diff(&reference, &r2) < 1e-6);
        }
        if fft::is_pow4(n) {
            let r4 = fft::fft_radix4(&x, Direction::Forward);
            prop_assert!(hcg_kernels::max_diff(&reference, &r4) < 1e-6);
        }
    }

    /// Forward-then-inverse recovers the signal (linearity + unitarity).
    #[test]
    fn fft_inverse_identity(n in 1usize..120, seed in 0i64..50) {
        let x = signal(n, seed);
        let back = fft::fft_mixed(&fft::fft_mixed(&x, Direction::Forward), Direction::Inverse);
        prop_assert!(hcg_kernels::max_diff(&x, &back) < 1e-7);
    }

    /// Parseval: energy preserved by the forward transform (scaled by n).
    #[test]
    fn fft_parseval(n in 1usize..100, seed in 0i64..30) {
        let x = signal(n, seed);
        let y = fft::fft_mixed(&x, Direction::Forward);
        let ex: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
        let ey: f64 = y.iter().map(|v| v.abs() * v.abs()).sum::<f64>() / n as f64;
        prop_assert!((ex - ey).abs() <= 1e-6 * ex.max(1.0));
    }

    /// Interleaved encode/decode is the identity.
    #[test]
    fn interleave_roundtrip(n in 0usize..60, seed in 0i64..20) {
        let x = signal(n, seed);
        prop_assert_eq!(from_interleaved(&to_interleaved(&x)), x);
    }

    /// DCT-III inverts DCT-II in both implementations.
    #[test]
    fn dct_inverse_identity(n in 1usize..80, seed in 0i64..30) {
        let x: Vec<f64> = signal(n, seed).iter().map(|c| c.re).collect();
        let back_naive = dct::dct3_naive(&dct::dct2_naive(&x));
        let back_fft = dct::dct3_fft(&dct::dct2_fft(&x));
        for i in 0..n {
            prop_assert!((back_naive[i] - x[i]).abs() < 1e-8);
            prop_assert!((back_fft[i] - x[i]).abs() < 1e-7);
        }
    }

    /// Convolution is commutative and linear; all three 1-D algorithms
    /// agree.
    #[test]
    fn conv_algebra(n in 1usize..60, k in 1usize..20, seed in 0i64..20) {
        let x: Vec<f64> = signal(n, seed).iter().map(|c| c.re).collect();
        let h: Vec<f64> = signal(k, seed + 7).iter().map(|c| c.im).collect();
        let direct = conv::conv_direct(&x, &h);
        let generic = conv::conv_generic(&x, &h);
        let via_fft = conv::conv_fft(&x, &h);
        let swapped = conv::conv_direct(&h, &x);
        prop_assert_eq!(direct.len(), n + k - 1);
        for i in 0..direct.len() {
            prop_assert!((direct[i] - generic[i]).abs() < 1e-9);
            prop_assert!((direct[i] - via_fft[i]).abs() < 1e-7);
            prop_assert!((direct[i] - swapped[i]).abs() < 1e-9);
        }
    }

    /// Convolving with a unit impulse is the identity.
    #[test]
    fn conv_impulse_identity(n in 1usize..80, seed in 0i64..20) {
        let x: Vec<f64> = signal(n, seed).iter().map(|c| c.re).collect();
        let out = conv::conv_direct(&x, &[1.0]);
        prop_assert_eq!(out, x);
    }

    /// inv(M)·M ≈ I for diagonally dominant matrices, both algorithms.
    #[test]
    fn matrix_inverse_identity(n in 1usize..6, seed in 0i64..40) {
        let m: Vec<f64> = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                let base = (((i as i64 + seed) * 37 % 19) as f64) / 10.0 - 0.9;
                if r == c { base + n as f64 + 2.0 } else { base }
            })
            .collect();
        let inv = matrix::inv_gauss(&m, n).expect("diag dominant is invertible");
        let prod = matrix::matmul_general(&m, &inv, n, n, n).expect("dims");
        for r in 0..n {
            for c in 0..n {
                let want = if r == c { 1.0 } else { 0.0 };
                prop_assert!((prod[r * n + c] - want).abs() < 1e-7);
            }
        }
        if n <= 4 {
            let inv2 = matrix::inv_analytic(&m, n).expect("analytic");
            for i in 0..n * n {
                prop_assert!((inv[i] - inv2[i]).abs() < 1e-7);
            }
        }
    }

    /// det(A·B) == det(A)·det(B).
    #[test]
    fn determinant_multiplicative(seed in 0i64..60) {
        let n = 3;
        let gen_m = |s: i64| -> Vec<f64> {
            (0..9).map(|i| (((i as i64 + s) * 23 % 13) as f64) / 5.0 + if i % 4 == 0 { 2.0 } else { 0.0 }).collect()
        };
        let a = gen_m(seed);
        let b = gen_m(seed + 31);
        let ab = matrix::matmul_general(&a, &b, n, n, n).expect("dims");
        let da = matrix::det_lu(&a, n).expect("det");
        let db = matrix::det_lu(&b, n).expect("det");
        let dab = matrix::det_lu(&ab, n).expect("det");
        prop_assert!((dab - da * db).abs() < 1e-6 * (1.0 + dab.abs()));
    }

    /// Algorithm 1 contract: the winner always passes its own filters, and
    /// the winner's cost is minimal among accepted candidates.
    #[test]
    fn autotuner_picks_feasible_minimum(n in 1usize..300) {
        let lib = CodeLibrary::new();
        let mut tuner = Autotuner::new(Meter::OpCount);
        let size = KernelSize(vec![n]);
        let (winner, _) = tuner
            .select(&lib, ActorKind::Fft, DataType::F32, &size)
            .expect("fft always selectable");
        prop_assert!(winner.can_handle_size(&size));
        prop_assert!(winner.can_handle_dtype(DataType::F32));
        for k in lib.for_actor(ActorKind::Fft) {
            if k.can_handle_size(&size) {
                prop_assert!(winner.op_count(&size) <= k.op_count(&size),
                    "{} beat the winner {} at n={n}", k.name, winner.name);
            }
        }
    }
}
