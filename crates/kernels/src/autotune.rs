//! Algorithm 1 of the paper: adaptive pre-calculation that selects the
//! optimal implementation for an intensive computing actor at its concrete
//! input scale, with a selection history for quick re-synthesis.

use crate::registry::{CodeLibrary, Kernel, KernelError, KernelSize};
use hcg_model::{ActorKind, DataType, SignalType, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// How implementation cost is measured during pre-calculation (Algorithm 1
/// line 14, `runImplementation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meter {
    /// Deterministic analytic operation counts — reproducible across
    /// machines, used by tests and the default benchmark harness.
    OpCount,
    /// Wall-clock execution of the implementation on the generated test
    /// input, repeated `reps` times and summed — the paper's methodology.
    WallClock {
        /// Number of timed repetitions.
        reps: u32,
    },
}

/// One remembered decision (`storeSelection` of Algorithm 1 line 18).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Actor type.
    pub actor: ActorKind,
    /// Input data type.
    pub dtype: DataType,
    /// Input size signature.
    pub size: KernelSize,
    /// Winning implementation name.
    pub impl_name: String,
    /// Measured cost of the winner.
    pub cost: u64,
}

/// Error from implementation selection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectError {
    /// The library has no implementation at all for the actor kind.
    NoImplementation(ActorKind),
    /// Every candidate failed to execute on the test input.
    AllFailed {
        /// Actor kind that failed.
        actor: ActorKind,
        /// Last execution error.
        last: KernelError,
    },
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::NoImplementation(k) => {
                write!(f, "code library has no implementation for {k}")
            }
            SelectError::AllFailed { actor, last } => {
                write!(
                    f,
                    "every {actor} implementation failed pre-calculation: {last}"
                )
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// The Algorithm 1 engine: selection history plus pre-calculation.
#[derive(Debug, Clone)]
pub struct Autotuner {
    history: BTreeMap<(ActorKind, DataType, KernelSize), Selection>,
    /// Cost measurement strategy.
    pub meter: Meter,
    /// Seed for `generateTestInput` (line 10) so runs are reproducible.
    pub seed: u64,
}

impl Default for Autotuner {
    fn default() -> Self {
        Self::new(Meter::OpCount)
    }
}

impl Autotuner {
    /// A fresh tuner with an empty history.
    pub fn new(meter: Meter) -> Self {
        Autotuner {
            history: BTreeMap::new(),
            meter,
            seed: 0x5eed_c0de,
        }
    }

    /// Number of remembered selections.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// `loadSelectionHistory(ActorType)` (line 1): the remembered
    /// selections for one actor kind.
    pub fn history_for(&self, actor: ActorKind) -> Vec<&Selection> {
        self.history.values().filter(|s| s.actor == actor).collect()
    }

    /// Adopt every selection of `other` that this tuner has not decided
    /// itself. Existing entries win, so a caller's own history is never
    /// clobbered. Used by incremental sessions to carry quick-search
    /// results across compiles with fresh generator instances — sound
    /// whenever both tuners measure deterministically with the same meter
    /// and seed, because a remembered selection then equals what a fresh
    /// pre-calculation would pick.
    pub fn adopt_history(&mut self, other: &Autotuner) {
        for (key, sel) in &other.history {
            self.history
                .entry(key.clone())
                .or_insert_with(|| sel.clone());
        }
    }

    /// Algorithm 1 in full: history lookup (lines 3–6), then
    /// pre-calculation over the filtered implementation list (lines 7–17),
    /// then `storeSelection` (line 18).
    ///
    /// Returns the chosen kernel and whether it was served from history.
    ///
    /// # Errors
    ///
    /// Returns [`SelectError`] when the library has no implementation for
    /// the kind or every candidate fails to execute.
    pub fn select<'lib>(
        &mut self,
        lib: &'lib CodeLibrary,
        actor: ActorKind,
        dtype: DataType,
        size: &KernelSize,
    ) -> Result<(&'lib Kernel, bool), SelectError> {
        // Lines 3–6: history lookup.
        let key = (actor, dtype, size.clone());
        if let Some(sel) = self.history.get(&key) {
            if let Some(k) = lib.find(actor, &sel.impl_name) {
                return Ok((k, true));
            }
        }

        // Line 7: load the implementation list.
        let impls = lib.for_actor(actor);
        if impls.is_empty() {
            return Err(SelectError::NoImplementation(actor));
        }
        // Line 8: start from the general implementation.
        let mut best = lib
            .general_for(actor)
            .ok_or(SelectError::NoImplementation(actor))?;
        let mut min_cost = u64::MAX;
        // Line 10: random test input at the actor's input size.
        let test_input = generate_test_input(actor, dtype, size, self.seed);
        let mut last_err = None;
        let mut any_ok = false;
        for imp in impls {
            // Lines 12–13: dtype/size filters.
            if !imp.can_handle_dtype(dtype) || !imp.can_handle_size(size) {
                continue;
            }
            // Line 14: run and cost.
            let cost = match self.measure(imp, size, &test_input) {
                Ok(c) => c,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            any_ok = true;
            // Lines 15–17: keep the minimum.
            if cost < min_cost {
                best = imp;
                min_cost = cost;
            }
        }
        if !any_ok {
            return Err(SelectError::AllFailed {
                actor,
                last: last_err.unwrap_or_else(|| KernelError("no candidate passed filters".into())),
            });
        }
        // Line 18: store.
        self.history.insert(
            key,
            Selection {
                actor,
                dtype,
                size: size.clone(),
                impl_name: best.name.to_owned(),
                cost: min_cost,
            },
        );
        Ok((best, false))
    }

    fn measure(
        &self,
        imp: &Kernel,
        size: &KernelSize,
        input: &[Tensor],
    ) -> Result<u64, KernelError> {
        // Always execute once: a kernel that cannot run must never win.
        imp.run(input)?;
        match self.meter {
            Meter::OpCount => Ok(imp.op_count(size)),
            Meter::WallClock { reps } => {
                let start = Instant::now();
                for _ in 0..reps.max(1) {
                    imp.run(input)?;
                }
                Ok(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
            }
        }
    }

    /// Serialise the history to a line-oriented text form (one selection per
    /// line) for persistence across runs.
    pub fn history_to_text(&self) -> String {
        let mut out = String::new();
        for s in self.history.values() {
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                s.actor, s.dtype, s.size, s.impl_name, s.cost
            ));
        }
        out
    }

    /// Persist the selection history to a file (the paper stores history
    /// "for a quick search" across code-generation runs).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save_history_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.history_to_text())
    }

    /// Load and merge a history file written by
    /// [`Autotuner::save_history_file`]. A missing file is not an error
    /// (first run); malformed lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than `NotFound`.
    pub fn load_history_file(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                self.load_history_text(&text);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Load history lines written by [`Autotuner::history_to_text`],
    /// merging into the current history (malformed lines are skipped).
    pub fn load_history_text(&mut self, text: &str) {
        for line in text.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            let [actor, dtype, size, name, cost] = parts.as_slice() else {
                continue;
            };
            let (Ok(actor), Ok(dtype)) = (actor.parse::<ActorKind>(), dtype.parse::<DataType>())
            else {
                continue;
            };
            let dims: Option<Vec<usize>> = size.split('x').map(|d| d.parse().ok()).collect();
            let (Some(dims), Ok(cost)) = (dims, cost.parse::<u64>()) else {
                continue;
            };
            let size = KernelSize(dims);
            self.history.insert(
                (actor, dtype, size.clone()),
                Selection {
                    actor,
                    dtype,
                    size,
                    impl_name: (*name).to_owned(),
                    cost,
                },
            );
        }
    }
}

/// `generateTestInput(DataSize)` (Algorithm 1 line 10): random input
/// tensors matching the actor's input contract at the given size.
pub fn generate_test_input(
    actor: ActorKind,
    dtype: DataType,
    size: &KernelSize,
    seed: u64,
) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vec_t = |n: usize, rng: &mut StdRng| {
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Tensor::from_f64(SignalType::vector(dtype, n), data).expect("sized data")
    };
    let mat_t = |r: usize, c: usize, diag_boost: f64, rng: &mut StdRng| {
        let data: Vec<f64> = (0..r * c)
            .map(|i| {
                let base: f64 = rng.gen_range(-1.0..1.0);
                // Diagonal dominance keeps inversion test inputs regular.
                if r == c && i / c == i % c {
                    base + diag_boost
                } else {
                    base
                }
            })
            .collect();
        Tensor::from_f64(SignalType::matrix(dtype, r, c), data).expect("sized data")
    };
    use ActorKind::*;
    match actor {
        Fft | Dct | Idct => vec![vec_t(size.0[0], &mut rng)],
        Ifft => vec![vec_t(size.0[0] * 2, &mut rng)],
        Conv => vec![vec_t(size.0[0], &mut rng), vec_t(size.0[1], &mut rng)],
        MatMul => {
            let (r, k, c) = (size.0[0], size.0[1], size.0[2]);
            vec![mat_t(r, k, 0.0, &mut rng), mat_t(k, c, 0.0, &mut rng)]
        }
        MatInv | MatDet => {
            let n = size.0[0];
            vec![mat_t(n, n, n as f64 + 1.0, &mut rng)]
        }
        Fft2d | Dct2d => vec![mat_t(size.0[0], size.0[1], 0.0, &mut rng)],
        Conv2d => vec![
            mat_t(size.0[0], size.0[1], 0.0, &mut rng),
            mat_t(size.0[2], size.0[3], 0.0, &mut rng),
        ],
        other => panic!("{other} is not an intensive computing actor"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_radix4_for_1024_like_the_paper() {
        // Paper §3: "the FFT actor … with 1024 floating point data as input
        // will be translated into the Radix-4 butterfly FFT implementation".
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::OpCount);
        let (k, from_history) = t
            .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))
            .unwrap();
        assert_eq!(k.name, "radix4");
        assert!(!from_history);
    }

    #[test]
    fn second_select_hits_history() {
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::OpCount);
        let size = KernelSize(vec![256]);
        let (first, h1) = t
            .select(&lib, ActorKind::Fft, DataType::F32, &size)
            .unwrap();
        let (second, h2) = t
            .select(&lib, ActorKind::Fft, DataType::F32, &size)
            .unwrap();
        assert!(!h1);
        assert!(h2);
        assert_eq!(first.name, second.name);
        assert_eq!(t.history_len(), 1);
    }

    #[test]
    fn adopt_history_keeps_own_entries_and_fills_gaps() {
        let lib = CodeLibrary::new();
        let mut donor = Autotuner::new(Meter::OpCount);
        donor
            .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))
            .unwrap();
        donor
            .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![4]))
            .unwrap();

        let mut t = Autotuner::new(Meter::OpCount);
        t.select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![4]))
            .unwrap();
        t.adopt_history(&donor);
        assert_eq!(t.history_len(), 2, "gap filled, own entry kept");
        let (k, from_history) = t
            .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))
            .unwrap();
        assert!(from_history, "adopted selection serves without measuring");
        assert_eq!(k.name, "radix4");
    }

    #[test]
    fn tiny_sizes_prefer_naive() {
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::OpCount);
        let (k, _) = t
            .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![4]))
            .unwrap();
        assert_eq!(k.name, "naive_dft");
    }

    #[test]
    fn non_pow2_excludes_radix_kernels() {
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::OpCount);
        let (k, _) = t
            .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1000]))
            .unwrap();
        assert!(k.name == "mixed" || k.name == "bluestein" || k.name == "naive_dft");
        assert_ne!(k.name, "radix2");
    }

    #[test]
    fn conv_crossover_short_vs_long_kernel() {
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::OpCount);
        let (short, _) = t
            .select(
                &lib,
                ActorKind::Conv,
                DataType::F32,
                &KernelSize(vec![1024, 4]),
            )
            .unwrap();
        assert_eq!(short.name, "direct");
        let (long, _) = t
            .select(
                &lib,
                ActorKind::Conv,
                DataType::F32,
                &KernelSize(vec![1024, 512]),
            )
            .unwrap();
        assert_eq!(long.name, "via_fft");
    }

    #[test]
    fn matrix_kernels_prefer_specialised_small_sizes() {
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::OpCount);
        let (mm, _) = t
            .select(
                &lib,
                ActorKind::MatMul,
                DataType::F64,
                &KernelSize(vec![4, 4, 4]),
            )
            .unwrap();
        assert_eq!(mm.name, "unrolled");
        let (inv, _) = t
            .select(&lib, ActorKind::MatInv, DataType::F64, &KernelSize(vec![3]))
            .unwrap();
        assert_eq!(inv.name, "analytic");
        let (big, _) = t
            .select(&lib, ActorKind::MatInv, DataType::F64, &KernelSize(vec![8]))
            .unwrap();
        assert_eq!(big.name, "gauss");
    }

    #[test]
    fn wall_clock_meter_selects_a_working_impl() {
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::WallClock { reps: 2 });
        let size = KernelSize(vec![64]);
        let (k, _) = t
            .select(&lib, ActorKind::Fft, DataType::F32, &size)
            .unwrap();
        assert!(k.can_handle_size(&size));
        // Whatever won must be recorded.
        assert_eq!(t.history_for(ActorKind::Fft).len(), 1);
    }

    #[test]
    fn history_roundtrips_through_text() {
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::OpCount);
        t.select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))
            .unwrap();
        t.select(
            &lib,
            ActorKind::Conv,
            DataType::F32,
            &KernelSize(vec![100, 9]),
        )
        .unwrap();
        let text = t.history_to_text();
        let mut t2 = Autotuner::new(Meter::OpCount);
        t2.load_history_text(&text);
        assert_eq!(t2.history_len(), 2);
        // A select on the restored tuner is a pure history hit.
        let (k, from_history) = t2
            .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))
            .unwrap();
        assert!(from_history);
        assert_eq!(k.name, "radix4");
    }

    #[test]
    fn malformed_history_lines_skipped() {
        let mut t = Autotuner::new(Meter::OpCount);
        t.load_history_text("garbage\nFFT f32 1024 radix4\nFFT f32 1024 radix4 12 extra\n");
        assert_eq!(t.history_len(), 0);
    }

    #[test]
    fn test_input_respects_contract() {
        let inp = generate_test_input(ActorKind::Conv, DataType::F32, &KernelSize(vec![10, 3]), 1);
        assert_eq!(inp.len(), 2);
        assert_eq!(inp[0].len(), 10);
        assert_eq!(inp[1].len(), 3);
        let ifft = generate_test_input(ActorKind::Ifft, DataType::F32, &KernelSize(vec![8]), 1);
        assert_eq!(ifft[0].len(), 16);
        // Deterministic with the same seed.
        let a = generate_test_input(ActorKind::Fft, DataType::F32, &KernelSize(vec![8]), 7);
        let b = generate_test_input(ActorKind::Fft, DataType::F32, &KernelSize(vec![8]), 7);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn non_intensive_select_errors() {
        let lib = CodeLibrary::new();
        let mut t = Autotuner::new(Meter::OpCount);
        assert!(matches!(
            t.select(&lib, ActorKind::Add, DataType::I32, &KernelSize(vec![4])),
            Err(SelectError::NoImplementation(_))
        ));
    }
}
