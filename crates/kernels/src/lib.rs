//! # hcg-kernels — the intensive computing actor code library
//!
//! Implements paper §3.2.1: a one-to-many library of implementations for
//! every intensive computing actor of Table 1a (FFT / DCT / convolution /
//! matrix algebra families, each with multiple algorithms whose relative
//! speed depends on the input scale — the Figure 1 phenomenon), and the
//! adaptive pre-calculation engine of **Algorithm 1** ([`Autotuner`]) that
//! picks the optimal implementation per actor instance and remembers its
//! choices.
//!
//! # Examples
//!
//! ```
//! use hcg_kernels::{Autotuner, CodeLibrary, KernelSize, Meter};
//! use hcg_model::{ActorKind, DataType};
//!
//! # fn main() -> Result<(), hcg_kernels::SelectError> {
//! let lib = CodeLibrary::new();
//! let mut tuner = Autotuner::new(Meter::OpCount);
//! let (best, _) = tuner.select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))?;
//! // The paper's example: 1024-point FFT selects the radix-4 butterfly.
//! assert_eq!(best.name, "radix4");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod complex;

pub mod autotune;
pub mod conv;
pub mod dct;
pub mod fft;
pub mod matrix;
pub mod registry;

pub use autotune::{generate_test_input, Autotuner, Meter, SelectError, Selection};
pub use complex::{from_interleaved, max_diff, to_interleaved, Complex64};
pub use registry::{CodeLibrary, Kernel, KernelError, KernelSize};
