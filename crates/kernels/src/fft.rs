//! The FFT implementation family of paper Figure 1: a naive DFT, a radix-2
//! FFT, a radix-4 FFT, a mixed-radix FFT (the "Mix-FFT" analogue, handling
//! any length via recursive Cooley–Tukey with naive DFTs at prime factors)
//! and Bluestein's chirp-z FFT. No single implementation wins at every input
//! scale — which is exactly why HCG's Algorithm 1 pre-calculates.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT (negative exponent).
    Forward,
    /// Inverse DFT (positive exponent, scaled by `1/n`).
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

fn post_scale(dir: Direction, out: &mut [Complex64]) {
    if dir == Direction::Inverse {
        let k = 1.0 / out.len() as f64;
        for v in out.iter_mut() {
            *v = v.scale(k);
        }
    }
}

/// Naive `O(n²)` DFT — the general implementation that handles any length
/// (and the correctness reference for every other FFT).
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = dir.sign();
    let mut out = vec![Complex64::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let w = Complex64::cis(sign * 2.0 * PI * (k * j % n) as f64 / n as f64);
            acc = acc + x * w;
        }
        *slot = acc;
    }
    post_scale(dir, &mut out);
    out
}

/// `true` when `n` is a power of two (the radix-2 filter of Algorithm 1
/// lines 12–13).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// `true` when `n` is a power of four.
pub fn is_pow4(n: usize) -> bool {
    is_pow2(n) && n.trailing_zeros().is_multiple_of(2)
}

/// Iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics when the length is not a power of two — callers filter via
/// [`is_pow2`] (Algorithm 1's `canHandleDataSize`).
pub fn fft_radix2(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    assert!(is_pow2(n), "radix-2 FFT requires power-of-two length");
    if n == 1 {
        return input.to_vec();
    }
    let mut a = input.to_vec();
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            a.swap(i, j);
        }
    }
    let sign = dir.sign();
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = a[start + k];
                let v = a[start + k + len / 2] * w;
                a[start + k] = u + v;
                a[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    post_scale(dir, &mut a);
    a
}

/// Recursive radix-4 FFT (butterflies of four), the implementation the
/// paper's Figure-1 discussion selects for large power-of-four scales.
///
/// # Panics
///
/// Panics when the length is not a power of four.
pub fn fft_radix4(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    assert!(is_pow4(n), "radix-4 FFT requires power-of-four length");
    let mut out = radix4_rec(input, dir.sign());
    post_scale(dir, &mut out);
    out
}

fn radix4_rec(x: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = x.len();
    if n == 1 {
        return x.to_vec();
    }
    let q = n / 4;
    let mut parts: Vec<Vec<Complex64>> = (0..4)
        .map(|r| {
            let sub: Vec<Complex64> = (0..q).map(|j| x[4 * j + r]).collect();
            radix4_rec(&sub, sign)
        })
        .collect();
    // j = e^(sign*i*pi/2): the radix-4 rotation.
    let jrot = Complex64::new(0.0, sign);
    let mut out = vec![Complex64::ZERO; n];
    for k in 0..q {
        let w1 = Complex64::cis(sign * 2.0 * PI * k as f64 / n as f64);
        let w2 = w1 * w1;
        let w3 = w2 * w1;
        let t0 = parts[0][k];
        let t1 = parts[1][k] * w1;
        let t2 = parts[2][k] * w2;
        let t3 = parts[3][k] * w3;
        let a0 = t0 + t2;
        let a1 = t0 - t2;
        let a2 = t1 + t3;
        let a3 = (t1 - t3) * jrot;
        out[k] = a0 + a2;
        out[k + q] = a1 + a3;
        out[k + 2 * q] = a0 - a2;
        out[k + 3 * q] = a1 - a3;
    }
    parts.clear();
    out
}

/// Mixed-radix Cooley–Tukey FFT: factors the length recursively (smallest
/// factor first) and falls back to the naive DFT at prime factors — the
/// analogue of the paper's Mix-FFT, efficient for smooth lengths of any
/// radix and correct for every length.
pub fn fft_mixed(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let mut out = mixed_rec(input, dir.sign());
    post_scale(dir, &mut out);
    out
}

fn smallest_factor(n: usize) -> usize {
    for p in [2usize, 3, 5, 7] {
        if n.is_multiple_of(p) {
            return p;
        }
    }
    let mut f = 11;
    while f * f <= n {
        if n.is_multiple_of(f) {
            return f;
        }
        f += 2;
    }
    n
}

fn mixed_rec(x: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = x.len();
    if n <= 1 {
        return x.to_vec();
    }
    let p = smallest_factor(n);
    if p == n {
        // Prime length: naive DFT without scaling.
        let mut out = vec![Complex64::ZERO; n];
        for (k, slot) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                acc = acc + v * Complex64::cis(sign * 2.0 * PI * (k * j % n) as f64 / n as f64);
            }
            *slot = acc;
        }
        return out;
    }
    let m = n / p;
    // p interleaved sub-transforms of length m.
    let subs: Vec<Vec<Complex64>> = (0..p)
        .map(|r| {
            let sub: Vec<Complex64> = (0..m).map(|j| x[p * j + r]).collect();
            mixed_rec(&sub, sign)
        })
        .collect();
    let mut out = vec![Complex64::ZERO; n];
    for k1 in 0..m {
        for k2 in 0..p {
            let k = k1 + k2 * m;
            let mut acc = Complex64::ZERO;
            for (r, sub) in subs.iter().enumerate() {
                let tw = Complex64::cis(sign * 2.0 * PI * (r * k % n) as f64 / n as f64);
                acc = acc + sub[k1] * tw;
            }
            out[k] = acc;
        }
    }
    out
}

/// Bluestein chirp-z FFT: any length in `O(n log n)` by re-expressing the
/// DFT as a convolution evaluated with power-of-two radix-2 FFTs. Heavier
/// constant factor than Cooley–Tukey — it loses at smooth sizes and wins at
/// large prime sizes.
pub fn fft_bluestein(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return input.to_vec();
    }
    let sign = dir.sign();
    // Chirp: w[k] = e^(sign*i*pi*k^2/n).
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            let kk = (k as u128 * k as u128) % (2 * n as u128);
            Complex64::cis(sign * PI * kk as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        b[k] = chirp[k].conj();
        b[m - k] = chirp[k].conj();
    }
    let fa = fft_radix2(&a, Direction::Forward);
    let fb = fft_radix2(&b, Direction::Forward);
    let prod: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
    let conv = fft_radix2(&prod, Direction::Inverse);
    let mut out: Vec<Complex64> = (0..n).map(|k| conv[k] * chirp[k]).collect();
    post_scale(dir, &mut out);
    out
}

/// Analytic operation-count models (complex multiply-adds) used by the
/// deterministic cost meter; constants reflect the relative overheads of
/// each algorithm.
pub mod ops {
    /// Generic FFT: a table-driven any-length implementation with runtime
    /// twiddle computation and no size specialisation — the shape of the
    /// "generic function" a template-based code generator links in. Same
    /// asymptotic class as radix-2 with ~3x the constant.
    pub fn fft_generic(n: usize) -> u64 {
        3 * fft_radix2(n) + 32
    }

    use super::{is_pow2, is_pow4, smallest_factor};

    fn log2f(n: usize) -> f64 {
        (n.max(1) as f64).log2()
    }

    /// Naive DFT: `n²` complex MACs.
    pub fn dft_naive(n: usize) -> u64 {
        (n as u64).saturating_mul(n as u64)
    }

    /// Radix-2: `5·n·log2 n` real flops-ish.
    pub fn fft_radix2(n: usize) -> u64 {
        (5.0 * n as f64 * log2f(n)) as u64 + 16
    }

    /// Radix-4: ~25 % fewer multiplies than radix-2.
    pub fn fft_radix4(n: usize) -> u64 {
        (4.25 * n as f64 * log2f(n)) as u64 + 24
    }

    /// Mixed radix: `n · Σfactors` butterflies with a generic-twiddle
    /// constant (~3×) that loses to the specialised radix-2/radix-4
    /// kernels on pure power-of-two sizes but wins on large smooth
    /// composite sizes.
    pub fn fft_mixed(n: usize) -> u64 {
        let mut m = n;
        let mut factor_sum = 0u64;
        while m > 1 {
            let p = smallest_factor(m);
            factor_sum += p as u64;
            m /= p;
        }
        (n as u64).saturating_mul(factor_sum.max(1)) * 3 + 64
    }

    /// Bluestein: three radix-2 FFTs of the padded size plus chirps.
    pub fn fft_bluestein(n: usize) -> u64 {
        let m = (2 * n - 1).next_power_of_two();
        3 * fft_radix2(m) + 6 * n as u64 + 48
    }

    /// Sanity helper for tests.
    pub fn cheapest_for(n: usize) -> &'static str {
        let mut best = ("naive", dft_naive(n));
        for (name, c) in [
            ("radix2", if is_pow2(n) { fft_radix2(n) } else { u64::MAX }),
            ("radix4", if is_pow4(n) { fft_radix4(n) } else { u64::MAX }),
            ("mixed", fft_mixed(n)),
            ("bluestein", fft_bluestein(n)),
        ] {
            if c < best.1 {
                best = (name, c);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_diff;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex64::new((0.3 * t).sin() + 0.1 * t, (0.7 * t).cos() * 0.5)
            })
            .collect()
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let y = dft_naive(&x, Direction::Forward);
        for v in y {
            assert!((v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_linearity_constant_signal() {
        let x = vec![Complex64::ONE; 16];
        let y = dft_naive(&x, Direction::Forward);
        assert!((y[0].re - 16.0).abs() < 1e-9);
        for v in &y[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn radix2_matches_naive() {
        for n in [2usize, 4, 8, 64, 256] {
            let x = signal(n);
            let a = dft_naive(&x, Direction::Forward);
            let b = fft_radix2(&x, Direction::Forward);
            assert!(max_diff(&a, &b) < 1e-6, "n={n}: {}", max_diff(&a, &b));
        }
    }

    #[test]
    fn radix4_matches_naive() {
        for n in [4usize, 16, 64, 256] {
            let x = signal(n);
            let a = dft_naive(&x, Direction::Forward);
            let b = fft_radix4(&x, Direction::Forward);
            assert!(max_diff(&a, &b) < 1e-6, "n={n}");
        }
    }

    #[test]
    fn mixed_matches_naive_any_length() {
        for n in [1usize, 2, 3, 6, 12, 15, 30, 60, 100, 120, 13, 17] {
            let x = signal(n);
            let a = dft_naive(&x, Direction::Forward);
            let b = fft_mixed(&x, Direction::Forward);
            assert!(max_diff(&a, &b) < 1e-6, "n={n}: {}", max_diff(&a, &b));
        }
    }

    #[test]
    fn bluestein_matches_naive_any_length() {
        for n in [1usize, 2, 5, 7, 11, 13, 16, 31, 100] {
            let x = signal(n);
            let a = dft_naive(&x, Direction::Forward);
            let b = fft_bluestein(&x, Direction::Forward);
            assert!(max_diff(&a, &b) < 1e-6, "n={n}: {}", max_diff(&a, &b));
        }
    }

    #[test]
    fn inverse_recovers_signal_all_impls() {
        let x = signal(64);
        for (name, fwd, inv) in [
            (
                "radix2",
                fft_radix2(&x, Direction::Forward),
                fft_radix2 as fn(&[Complex64], Direction) -> Vec<Complex64>,
            ),
            ("radix4", fft_radix4(&x, Direction::Forward), fft_radix4),
            ("mixed", fft_mixed(&x, Direction::Forward), fft_mixed),
            (
                "bluestein",
                fft_bluestein(&x, Direction::Forward),
                fft_bluestein,
            ),
            ("naive", dft_naive(&x, Direction::Forward), dft_naive),
        ] {
            let back = inv(&fwd, Direction::Inverse);
            assert!(max_diff(&back, &x) < 1e-6, "{name}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x = signal(128);
        let y = fft_radix2(&x, Direction::Forward);
        let ex: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
        let ey: f64 = y.iter().map(|v| v.abs() * v.abs()).sum::<f64>() / 128.0;
        assert!((ex - ey).abs() / ex < 1e-9);
    }

    #[test]
    #[should_panic]
    fn radix2_rejects_non_pow2() {
        fft_radix2(&signal(12), Direction::Forward);
    }

    #[test]
    #[should_panic]
    fn radix4_rejects_non_pow4() {
        fft_radix4(&signal(8), Direction::Forward);
    }

    #[test]
    fn size_predicates() {
        assert!(is_pow2(1) && is_pow2(2) && is_pow2(1024));
        assert!(!is_pow2(0) && !is_pow2(12));
        assert!(is_pow4(1) && is_pow4(4) && is_pow4(256) && is_pow4(1024));
        assert!(!is_pow4(2) && !is_pow4(8) && !is_pow4(512));
    }

    #[test]
    fn op_models_have_figure1_shape() {
        // Tiny sizes: naive cheapest; large pow-4: radix-4 cheapest; large
        // prime: bluestein beats naive.
        assert_eq!(ops::cheapest_for(4), "naive");
        assert_eq!(ops::cheapest_for(1024), "radix4");
        assert!(ops::fft_bluestein(1009) < ops::dft_naive(1009));
        // Radix-2-only sizes pick radix2 over mixed at scale.
        assert_eq!(ops::cheapest_for(2048), "radix2");
    }

    #[test]
    fn empty_input_ok() {
        assert!(dft_naive(&[], Direction::Forward).is_empty());
        assert!(fft_bluestein(&[], Direction::Forward).is_empty());
        assert!(fft_mixed(&[], Direction::Forward).is_empty());
    }
}
