//! Minimal complex arithmetic for the transform kernels (kept local so the
//! kernel library has no numeric dependencies).

use std::ops::{Add, Mul, Neg, Sub};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use hcg_kernels::Complex64;
/// let i = Complex64::new(0.0, 1.0);
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^(i·theta)`.
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

/// Interpret an interleaved `[re0, im0, re1, im1, …]` slice as complex
/// values.
pub fn from_interleaved(data: &[f64]) -> Vec<Complex64> {
    debug_assert_eq!(data.len() % 2, 0);
    data.chunks_exact(2)
        .map(|p| Complex64::new(p[0], p[1]))
        .collect()
}

/// Flatten complex values to interleaved `[re0, im0, …]` form.
pub fn to_interleaved(data: &[Complex64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(data.len() * 2);
    for c in data {
        out.push(c.re);
        out.push(c.im);
    }
    out
}

/// Maximum absolute component-wise difference between two complex slices.
pub fn max_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
    }

    #[test]
    fn cis_unit_circle() {
        let q = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!((q.re).abs() < 1e-15);
        assert!((q.im - 1.0).abs() < 1e-15);
        assert!((Complex64::cis(1.23).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn interleave_roundtrip() {
        let v = vec![Complex64::new(1.0, 2.0), Complex64::new(-3.0, 0.5)];
        assert_eq!(from_interleaved(&to_interleaved(&v)), v);
    }

    #[test]
    fn max_diff_measures() {
        let a = vec![Complex64::ONE, Complex64::ZERO];
        let b = vec![Complex64::ONE, Complex64::new(0.0, 0.25)];
        assert_eq!(max_diff(&a, &b), 0.25);
    }
}
