//! Convolution implementation family: direct `O(nk)` and FFT-based
//! `O(m log m)` 1-D full convolution, plus direct 2-D convolution.

use crate::complex::Complex64;
use crate::fft::{fft_radix2, Direction};

/// Generic full convolution in output-gather form: for every output index,
/// scan the whole kernel with per-tap boundary checks — the shape of the
/// generic library function a template-based generator emits. Same result
/// as [`conv_direct`] with roughly 2.5× the per-tap work (bounds tests and
/// recomputed indices that the optimised variant lays out).
pub fn conv_generic(x: &[f64], h: &[f64]) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let n = x.len();
    let k = h.len();
    let mut out = vec![0.0; n + k - 1];
    for (o, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, &hj) in h.iter().enumerate() {
            if o >= j && o - j < n {
                acc += x[o - j] * hj;
            }
        }
        *slot = acc;
    }
    out
}

/// Direct full convolution in input-scatter form with hoisted bounds:
/// output length `n + k − 1`. Wins over [`conv_fft`] for short kernels.
pub fn conv_direct(x: &[f64], h: &[f64]) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let n = x.len();
    let k = h.len();
    let mut out = vec![0.0; n + k - 1];
    for (i, &xi) in x.iter().enumerate() {
        for (j, &hj) in h.iter().enumerate() {
            out[i + j] += xi * hj;
        }
    }
    out
}

/// FFT-based full convolution via zero-padded radix-2 FFTs (wins for long
/// kernels).
pub fn conv_fft(x: &[f64], h: &[f64]) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let out_len = x.len() + h.len() - 1;
    let m = out_len.next_power_of_two();
    let pad = |s: &[f64]| {
        let mut v = vec![Complex64::ZERO; m];
        for (i, &t) in s.iter().enumerate() {
            v[i] = Complex64::new(t, 0.0);
        }
        v
    };
    let fx = fft_radix2(&pad(x), Direction::Forward);
    let fh = fft_radix2(&pad(h), Direction::Forward);
    let prod: Vec<Complex64> = fx.iter().zip(&fh).map(|(a, b)| *a * *b).collect();
    let y = fft_radix2(&prod, Direction::Inverse);
    y[..out_len].iter().map(|c| c.re).collect()
}

/// Direct 2-D full convolution of row-major matrices `(r1×c1) ⊛ (r2×c2)`,
/// output `(r1+r2−1)×(c1+c2−1)`.
pub fn conv2d_direct(
    x: &[f64],
    (r1, c1): (usize, usize),
    h: &[f64],
    (r2, c2): (usize, usize),
) -> Vec<f64> {
    assert_eq!(x.len(), r1 * c1);
    assert_eq!(h.len(), r2 * c2);
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let (ro, co) = (r1 + r2 - 1, c1 + c2 - 1);
    let mut out = vec![0.0; ro * co];
    for i1 in 0..r1 {
        for j1 in 0..c1 {
            let xv = x[i1 * c1 + j1];
            for i2 in 0..r2 {
                for j2 in 0..c2 {
                    out[(i1 + i2) * co + (j1 + j2)] += xv * h[i2 * c2 + j2];
                }
            }
        }
    }
    out
}

/// Analytic operation counts for the deterministic cost meter.
pub mod ops {
    /// Generic 1-D: `(n+k)·k` taps, each with boundary checks (~2.5×).
    pub fn conv_generic(n: usize, k: usize) -> u64 {
        ((n + k) as u64).saturating_mul(k as u64) * 5 / 2
    }

    /// Direct 1-D: `n·k` MACs.
    pub fn conv_direct(n: usize, k: usize) -> u64 {
        (n as u64).saturating_mul(k as u64)
    }

    /// FFT-based 1-D: three radix-2 FFTs of the padded length.
    pub fn conv_fft(n: usize, k: usize) -> u64 {
        let m = (n + k - 1).next_power_of_two();
        3 * crate::fft::ops::fft_radix2(m) + m as u64
    }

    /// Direct 2-D.
    pub fn conv2d_direct(r1: usize, c1: usize, r2: usize, c2: usize) -> u64 {
        (r1 * c1) as u64 * (r2 * c2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn identity_kernel() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(conv_direct(&x, &[1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_small_case() {
        // [1,2] ⊛ [3,4] = [3, 10, 8]
        assert_eq!(conv_direct(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 10.0, 8.0]);
    }

    #[test]
    fn commutativity() {
        let x = [1.0, -2.0, 0.5, 3.0];
        let h = [0.25, 1.0, -1.0];
        assert!(close(&conv_direct(&x, &h), &conv_direct(&h, &x), 1e-12));
    }

    #[test]
    fn fft_matches_direct() {
        let x: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.21).sin()).collect();
        let h: Vec<f64> = (0..17).map(|i| 1.0 / (1.0 + i as f64)).collect();
        assert!(close(&conv_fft(&x, &h), &conv_direct(&x, &h), 1e-8));
    }

    #[test]
    fn fft_matches_direct_pow2_edge() {
        // Output length already a power of two.
        let x = vec![1.0; 5];
        let h = vec![1.0; 4];
        assert!(close(&conv_fft(&x, &h), &conv_direct(&x, &h), 1e-9));
    }

    #[test]
    fn output_length() {
        assert_eq!(conv_direct(&[0.0; 10], &[0.0; 3]).len(), 12);
        assert_eq!(conv_fft(&[0.0; 10], &[0.0; 3]).len(), 12);
    }

    #[test]
    fn empty_inputs() {
        assert!(conv_direct(&[], &[1.0]).is_empty());
        assert!(conv_fft(&[1.0], &[]).is_empty());
    }

    #[test]
    fn conv2d_identity() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let out = conv2d_direct(&x, (2, 2), &[1.0], (1, 1));
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conv2d_separable_equals_outer_product_of_1d() {
        // h = hr ⊗ hc means conv2d(x, h) applied to an impulse equals the
        // outer product of the 1-D kernels.
        let hr = [1.0, 2.0];
        let hc = [3.0, -1.0, 0.5];
        let h: Vec<f64> = hr
            .iter()
            .flat_map(|&a| hc.iter().map(move |&b| a * b))
            .collect();
        let mut impulse = vec![0.0; 9];
        impulse[0] = 1.0;
        let out = conv2d_direct(&impulse, (3, 3), &h, (2, 3));
        assert_eq!(out.len(), 4 * 5);
        assert_eq!(out[0], 3.0);
        assert_eq!(out[1], -1.0);
        assert_eq!(out[5], 6.0); // row 1, col 0 = hr[1]*hc[0]
    }

    #[test]
    fn op_models_cross_over() {
        // Short kernel: direct wins. Long kernel: FFT wins.
        assert!(ops::conv_direct(1024, 4) < ops::conv_fft(1024, 4));
        assert!(ops::conv_fft(1024, 512) < ops::conv_direct(1024, 512));
    }
}
