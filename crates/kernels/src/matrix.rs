//! Matrix kernels (paper Table 1a): multiplication, inversion and
//! determinant, each with a general implementation and size-specialised
//! unrolled implementations for the 2×2 / 3×3 / 4×4 cases the paper calls
//! out.

use std::fmt;

/// Error from a matrix kernel (dimension mismatch or singular input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixError(String);

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix kernel error: {}", self.0)
    }
}

impl std::error::Error for MatrixError {}

fn err(msg: impl Into<String>) -> MatrixError {
    MatrixError(msg.into())
}

/// General row-major matrix multiply `(r×k)·(k×c)`.
///
/// # Errors
///
/// Fails when slice lengths do not match the dimensions.
pub fn matmul_general(
    a: &[f64],
    b: &[f64],
    r: usize,
    k: usize,
    c: usize,
) -> Result<Vec<f64>, MatrixError> {
    if a.len() != r * k || b.len() != k * c {
        return Err(err("dimension mismatch"));
    }
    let mut out = vec![0.0; r * c];
    for i in 0..r {
        for p in 0..k {
            let av = a[i * k + p];
            for j in 0..c {
                out[i * c + j] += av * b[p * c + j];
            }
        }
    }
    Ok(out)
}

/// Fully unrolled square multiply for n ∈ {2, 3, 4} — the size-specialised
/// implementations of the code library.
///
/// # Errors
///
/// Fails for other sizes or mismatched slices.
pub fn matmul_unrolled(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, MatrixError> {
    if !(2..=4).contains(&n) {
        return Err(err("unrolled multiply supports 2x2..4x4"));
    }
    if a.len() != n * n || b.len() != n * n {
        return Err(err("dimension mismatch"));
    }
    let mut out = vec![0.0; n * n];
    // Macro-free unroll: the loop bounds are compile-time-visible per n so
    // the optimiser flattens them; correctness is what matters here.
    match n {
        2 => {
            out[0] = a[0] * b[0] + a[1] * b[2];
            out[1] = a[0] * b[1] + a[1] * b[3];
            out[2] = a[2] * b[0] + a[3] * b[2];
            out[3] = a[2] * b[1] + a[3] * b[3];
        }
        3 => {
            for i in 0..3 {
                for j in 0..3 {
                    out[i * 3 + j] =
                        a[i * 3] * b[j] + a[i * 3 + 1] * b[3 + j] + a[i * 3 + 2] * b[6 + j];
                }
            }
        }
        _ => {
            for i in 0..4 {
                for j in 0..4 {
                    out[i * 4 + j] = a[i * 4] * b[j]
                        + a[i * 4 + 1] * b[4 + j]
                        + a[i * 4 + 2] * b[8 + j]
                        + a[i * 4 + 3] * b[12 + j];
                }
            }
        }
    }
    Ok(out)
}

/// Determinant via analytic cofactor expansion for n ∈ {1, 2, 3, 4}.
///
/// # Errors
///
/// Fails for other sizes.
pub fn det_analytic(m: &[f64], n: usize) -> Result<f64, MatrixError> {
    if m.len() != n * n {
        return Err(err("dimension mismatch"));
    }
    Ok(match n {
        1 => m[0],
        2 => m[0] * m[3] - m[1] * m[2],
        3 => {
            m[0] * (m[4] * m[8] - m[5] * m[7]) - m[1] * (m[3] * m[8] - m[5] * m[6])
                + m[2] * (m[3] * m[7] - m[4] * m[6])
        }
        4 => {
            let mut det = 0.0;
            for j in 0..4 {
                let minor = minor_of(m, 4, 0, j);
                let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
                det += sign * m[j] * det_analytic(&minor, 3)?;
            }
            det
        }
        _ => return Err(err("analytic determinant supports 1x1..4x4")),
    })
}

/// Determinant via LU decomposition with partial pivoting — the general
/// implementation for any `n`.
///
/// # Errors
///
/// Fails on dimension mismatch.
pub fn det_lu(m: &[f64], n: usize) -> Result<f64, MatrixError> {
    if m.len() != n * n {
        return Err(err("dimension mismatch"));
    }
    let mut a = m.to_vec();
    let mut det = 1.0;
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i * n + col]
                    .abs()
                    .partial_cmp(&a[j * n + col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot * n + col].abs() < 1e-300 {
            return Ok(0.0);
        }
        if pivot != col {
            for j in 0..n {
                a.swap(col * n + j, pivot * n + j);
            }
            det = -det;
        }
        det *= a[col * n + col];
        for i in col + 1..n {
            let f = a[i * n + col] / a[col * n + col];
            for j in col..n {
                a[i * n + j] -= f * a[col * n + j];
            }
        }
    }
    Ok(det)
}

/// Extract the `(row, col)` minor of an `n×n` matrix.
fn minor_of(m: &[f64], n: usize, row: usize, col: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity((n - 1) * (n - 1));
    for i in 0..n {
        if i == row {
            continue;
        }
        for j in 0..n {
            if j == col {
                continue;
            }
            out.push(m[i * n + j]);
        }
    }
    out
}

/// Analytic inverse via the adjugate for n ∈ {1, 2, 3, 4}.
///
/// # Errors
///
/// Fails for other sizes or singular matrices.
pub fn inv_analytic(m: &[f64], n: usize) -> Result<Vec<f64>, MatrixError> {
    if m.len() != n * n {
        return Err(err("dimension mismatch"));
    }
    if !(1..=4).contains(&n) {
        return Err(err("analytic inverse supports 1x1..4x4"));
    }
    let det = det_analytic(m, n)?;
    if det.abs() < 1e-300 {
        return Err(err("singular matrix"));
    }
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let minor = minor_of(m, n, i, j);
            let cof = det_analytic(&minor, n - 1).unwrap_or(1.0);
            let sign = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
            // Adjugate transposes the cofactor matrix.
            out[j * n + i] = sign * cof / det;
        }
    }
    if n == 1 {
        out[0] = 1.0 / m[0];
    }
    Ok(out)
}

/// Gauss–Jordan inverse with partial pivoting — the general implementation.
///
/// # Errors
///
/// Fails on dimension mismatch or singular matrices.
pub fn inv_gauss(m: &[f64], n: usize) -> Result<Vec<f64>, MatrixError> {
    if m.len() != n * n {
        return Err(err("dimension mismatch"));
    }
    let mut a = m.to_vec();
    let mut inv: Vec<f64> = (0..n * n)
        .map(|i| if i / n == i % n { 1.0 } else { 0.0 })
        .collect();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i * n + col]
                    .abs()
                    .partial_cmp(&a[j * n + col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot * n + col].abs() < 1e-12 {
            return Err(err("singular matrix"));
        }
        if pivot != col {
            for j in 0..n {
                a.swap(col * n + j, pivot * n + j);
                inv.swap(col * n + j, pivot * n + j);
            }
        }
        let p = a[col * n + col];
        for j in 0..n {
            a[col * n + j] /= p;
            inv[col * n + j] /= p;
        }
        for i in 0..n {
            if i == col {
                continue;
            }
            let f = a[i * n + col];
            if f == 0.0 {
                continue;
            }
            for j in 0..n {
                a[i * n + j] -= f * a[col * n + j];
                inv[i * n + j] -= f * inv[col * n + j];
            }
        }
    }
    Ok(inv)
}

/// Analytic operation counts for the deterministic cost meter.
pub mod ops {
    /// General multiply: `r·k·c` MACs plus loop overhead.
    pub fn matmul_general(r: usize, k: usize, c: usize) -> u64 {
        (r * k * c) as u64 + (r * c) as u64
    }

    /// Unrolled multiply: same MACs, no loop overhead (modelled 20 % off).
    pub fn matmul_unrolled(n: usize) -> u64 {
        ((n * n * n) as f64 * 0.8) as u64
    }

    /// Analytic inverse cost for tiny n.
    pub fn inv_analytic(n: usize) -> u64 {
        match n {
            1 => 1,
            2 => 8,
            3 => 40,
            _ => 220,
        }
    }

    /// Gauss–Jordan: `~2n³` plus pivot bookkeeping.
    pub fn inv_gauss(n: usize) -> u64 {
        2 * (n * n * n) as u64 + 8 * (n * n) as u64 + 16
    }

    /// Analytic determinant.
    pub fn det_analytic(n: usize) -> u64 {
        match n {
            1 => 1,
            2 => 3,
            3 => 14,
            _ => 60,
        }
    }

    /// LU determinant: `~(2/3)n³` plus pivoting.
    pub fn det_lu(n: usize) -> u64 {
        (2 * n * n * n) as u64 / 3 + 4 * (n * n) as u64 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    fn test_matrix(n: usize) -> Vec<f64> {
        // Diagonally dominant → invertible.
        (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                if r == c {
                    n as f64 + 1.0 + r as f64
                } else {
                    ((r * 3 + c * 7) % 5) as f64 * 0.3 - 0.6
                }
            })
            .collect()
    }

    #[test]
    fn matmul_identity() {
        let a = test_matrix(3);
        let eye = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let out = matmul_general(&a, &eye, 3, 3, 3).unwrap();
        assert!(close(&out, &a, 1e-12));
    }

    #[test]
    fn unrolled_matches_general() {
        for n in [2usize, 3, 4] {
            let a = test_matrix(n);
            let b: Vec<f64> = a.iter().rev().copied().collect();
            let g = matmul_general(&a, &b, n, n, n).unwrap();
            let u = matmul_unrolled(&a, &b, n).unwrap();
            assert!(close(&g, &u, 1e-12), "n={n}");
        }
    }

    #[test]
    fn rectangular_multiply() {
        // (2x3)·(3x1)
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 0.5, -1.0];
        let out = matmul_general(&a, &b, 2, 3, 1).unwrap();
        assert!(close(&out, &[-1.0, 0.5], 1e-12));
    }

    #[test]
    fn matmul_dimension_errors() {
        assert!(matmul_general(&[1.0], &[1.0], 2, 2, 2).is_err());
        assert!(matmul_unrolled(&[1.0; 25], &[1.0; 25], 5).is_err());
    }

    #[test]
    fn det_analytic_matches_lu() {
        for n in [1usize, 2, 3, 4] {
            let m = test_matrix(n);
            let a = det_analytic(&m, n).unwrap();
            let l = det_lu(&m, n).unwrap();
            assert!((a - l).abs() / a.abs().max(1.0) < 1e-9, "n={n}: {a} vs {l}");
        }
    }

    #[test]
    fn det_known_values() {
        assert_eq!(det_analytic(&[3.0], 1).unwrap(), 3.0);
        assert_eq!(det_analytic(&[1.0, 2.0, 3.0, 4.0], 2).unwrap(), -2.0);
        // Singular.
        assert_eq!(det_lu(&[1.0, 2.0, 2.0, 4.0], 2).unwrap(), 0.0);
    }

    #[test]
    fn det_lu_large() {
        // Upper triangular: determinant = product of the diagonal.
        let n = 6;
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                m[i * n + j] = if i == j { (i + 1) as f64 } else { 0.5 };
            }
        }
        assert!((det_lu(&m, n).unwrap() - 720.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        for n in [1usize, 2, 3, 4, 5, 7] {
            let m = test_matrix(n);
            let inv = if n <= 4 {
                inv_analytic(&m, n).unwrap()
            } else {
                inv_gauss(&m, n).unwrap()
            };
            let prod = matmul_general(&m, &inv, n, n, n).unwrap();
            for i in 0..n {
                for j in 0..n {
                    let expected = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (prod[i * n + j] - expected).abs() < 1e-8,
                        "n={n} at ({i},{j}): {}",
                        prod[i * n + j]
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_and_gauss_inverses_agree() {
        for n in [2usize, 3, 4] {
            let m = test_matrix(n);
            let a = inv_analytic(&m, n).unwrap();
            let g = inv_gauss(&m, n).unwrap();
            assert!(close(&a, &g, 1e-9), "n={n}");
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let s = [1.0, 2.0, 2.0, 4.0];
        assert!(inv_analytic(&s, 2).is_err());
        assert!(inv_gauss(&s, 2).is_err());
    }

    #[test]
    fn op_models_prefer_unrolled_small() {
        for n in [2usize, 3, 4] {
            assert!(ops::matmul_unrolled(n) < ops::matmul_general(n, n, n));
            assert!(ops::inv_analytic(n) < ops::inv_gauss(n));
            assert!(ops::det_analytic(n) < ops::det_lu(n));
        }
    }
}
