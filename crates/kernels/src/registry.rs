//! The code library (paper Algorithm 1, `loadCodeLibrary`): a one-to-many
//! map from intensive computing actor type to candidate implementations,
//! each with its input filters (`canHandleDataType` / `canHandleDataSize`),
//! an executable body, and an analytic operation count.

use crate::complex::{from_interleaved, to_interleaved, Complex64};
use crate::conv::{conv2d_direct, conv_direct, conv_fft, conv_generic};
use crate::dct::{dct2_2d, dct2_fft, dct2_naive, dct3_fft, dct3_naive};
use crate::fft::{
    dft_naive, fft_bluestein, fft_mixed, fft_radix2, fft_radix4, is_pow2, is_pow4, Direction,
};
use crate::matrix::{
    det_analytic, det_lu, inv_analytic, inv_gauss, matmul_general, matmul_unrolled,
};
use crate::{conv, dct, fft, matrix};
use hcg_model::{ActorKind, DataType, Shape, SignalType, Tensor};
use std::fmt;

/// Error from running a kernel implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelError(pub String);

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel error: {}", self.0)
    }
}

impl std::error::Error for KernelError {}

fn kerr(msg: impl Into<String>) -> KernelError {
    KernelError(msg.into())
}

/// The size signature of an intensive actor instance — the `DataSize` input
/// of Algorithm 1. One entry per dimension that affects implementation
/// choice:
///
/// * `FFT`/`IFFT`/`DCT`/`IDCT`: `[n]`
/// * `Conv`: `[n, k]`
/// * `MatMul`: `[r, k, c]`
/// * `MatInv`/`MatDet`: `[n]`
/// * `FFT2D`/`DCT2D`: `[rows, cols]`
/// * `Conv2D`: `[r1, c1, r2, c2]`
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelSize(pub Vec<usize>);

impl KernelSize {
    /// Derive the size signature from an actor's resolved input types.
    ///
    /// Returns `None` for non-intensive kinds or shape mismatches (which
    /// model validation rejects anyway).
    pub fn from_inputs(kind: ActorKind, inputs: &[SignalType]) -> Option<KernelSize> {
        use ActorKind::*;
        Some(KernelSize(match kind {
            Fft | Dct | Idct => vec![inputs.first()?.len()],
            Ifft => vec![inputs.first()?.len() / 2],
            Conv => vec![inputs.first()?.len(), inputs.get(1)?.len()],
            MatMul => {
                let (r, k) = mat_dims(inputs.first()?)?;
                let (_, c) = mat_dims(inputs.get(1)?)?;
                vec![r, k, c]
            }
            MatInv | MatDet => {
                let (r, _) = mat_dims(inputs.first()?)?;
                vec![r]
            }
            Fft2d | Dct2d => {
                let (r, c) = mat_dims(inputs.first()?)?;
                vec![r, c]
            }
            Conv2d => {
                let (r1, c1) = mat_dims(inputs.first()?)?;
                let (r2, c2) = mat_dims(inputs.get(1)?)?;
                vec![r1, c1, r2, c2]
            }
            _ => return None,
        }))
    }
}

fn mat_dims(t: &SignalType) -> Option<(usize, usize)> {
    match t.shape {
        Shape::Matrix(r, c) => Some((r, c)),
        _ => None,
    }
}

impl fmt::Display for KernelSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("x")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// One implementation in the code library.
#[derive(Clone)]
pub struct Kernel {
    /// Implementation name, unique within its actor kind (e.g. `radix4`).
    pub name: &'static str,
    /// Actor type implemented.
    pub actor: ActorKind,
    /// `true` for the fallback that handles every size (Algorithm 1 line 8,
    /// `getGeneralImplementation`).
    pub general: bool,
    can_size: fn(&KernelSize) -> bool,
    run_fn: fn(&[Tensor]) -> Result<Tensor, KernelError>,
    ops_fn: fn(&KernelSize) -> u64,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kernel({}::{})", self.actor, self.name)
    }
}

impl Kernel {
    /// `canHandleDataType` of Algorithm 1: intensive kernels operate on
    /// floating-point signals.
    pub fn can_handle_dtype(&self, dtype: DataType) -> bool {
        dtype.is_float()
    }

    /// `canHandleDataSize` of Algorithm 1.
    pub fn can_handle_size(&self, size: &KernelSize) -> bool {
        (self.can_size)(size)
    }

    /// Execute on runtime inputs.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] on malformed inputs (wrong arity/shape) or
    /// numerically impossible requests (singular matrix inversion).
    pub fn run(&self, inputs: &[Tensor]) -> Result<Tensor, KernelError> {
        (self.run_fn)(inputs)
    }

    /// Analytic operation count at a given size (the deterministic cost
    /// measure).
    pub fn op_count(&self, size: &KernelSize) -> u64 {
        (self.ops_fn)(size)
    }
}

// ---- tensor plumbing shared by the kernel bodies ----

fn one_input(inputs: &[Tensor]) -> Result<&Tensor, KernelError> {
    match inputs {
        [x] => Ok(x),
        other => Err(kerr(format!("expected 1 input, got {}", other.len()))),
    }
}

fn two_inputs(inputs: &[Tensor]) -> Result<(&Tensor, &Tensor), KernelError> {
    match inputs {
        [x, y] => Ok((x, y)),
        other => Err(kerr(format!("expected 2 inputs, got {}", other.len()))),
    }
}

fn out_tensor(dtype: DataType, data: Vec<f64>) -> Result<Tensor, KernelError> {
    let n = data.len();
    let ty = if n == 1 {
        SignalType::scalar(dtype)
    } else {
        SignalType::vector(dtype, n)
    };
    Tensor::from_f64(ty, data).map_err(|e| kerr(e.to_string()))
}

fn out_matrix(
    dtype: DataType,
    rows: usize,
    cols: usize,
    data: Vec<f64>,
) -> Result<Tensor, KernelError> {
    Tensor::from_f64(SignalType::matrix(dtype, rows, cols), data).map_err(|e| kerr(e.to_string()))
}

fn real_to_complex(x: &Tensor) -> Vec<Complex64> {
    x.as_f64()
        .into_iter()
        .map(|r| Complex64::new(r, 0.0))
        .collect()
}

fn fft_body(
    f: fn(&[Complex64], Direction) -> Vec<Complex64>,
) -> impl Fn(&[Tensor]) -> Result<Tensor, KernelError> {
    move |inputs| {
        let x = one_input(inputs)?;
        let spec = f(&real_to_complex(x), Direction::Forward);
        out_tensor(x.ty.dtype, to_interleaved(&spec))
    }
}

fn ifft_body(
    f: fn(&[Complex64], Direction) -> Vec<Complex64>,
) -> impl Fn(&[Tensor]) -> Result<Tensor, KernelError> {
    move |inputs| {
        let x = one_input(inputs)?;
        let data = x.as_f64();
        if data.len() % 2 != 0 {
            return Err(kerr("IFFT input must be interleaved complex"));
        }
        let time = f(&from_interleaved(&data), Direction::Inverse);
        out_tensor(x.ty.dtype, time.iter().map(|c| c.re).collect())
    }
}

// Monomorphic wrappers (fn pointers can't capture, so each implementation
// gets a thin named function).
macro_rules! fft_kernels {
    ($(($fwd:ident, $inv:ident, $core:path)),* $(,)?) => {
        $(
            fn $fwd(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
                fft_body($core)(inputs)
            }
            fn $inv(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
                ifft_body($core)(inputs)
            }
        )*
    };
}

fft_kernels!(
    (run_fft_generic, run_ifft_generic, fft_mixed),
    (run_fft_naive, run_ifft_naive, dft_naive),
    (run_fft_radix2, run_ifft_radix2, fft_radix2),
    (run_fft_radix4, run_ifft_radix4, fft_radix4),
    (run_fft_mixed, run_ifft_mixed, fft_mixed),
    (run_fft_bluestein, run_ifft_bluestein, fft_bluestein),
);

fn run_dct_generic(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    out_tensor(x.ty.dtype, dct2_fft(&x.as_f64()))
}

fn run_idct_generic(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    out_tensor(x.ty.dtype, dct3_fft(&x.as_f64()))
}

fn run_dct_naive(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    out_tensor(x.ty.dtype, dct2_naive(&x.as_f64()))
}

fn run_dct_fft(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    out_tensor(x.ty.dtype, dct2_fft(&x.as_f64()))
}

fn run_idct_naive(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    out_tensor(x.ty.dtype, dct3_naive(&x.as_f64()))
}

fn run_idct_fft(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    out_tensor(x.ty.dtype, dct3_fft(&x.as_f64()))
}

fn run_conv_generic(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let (x, h) = two_inputs(inputs)?;
    out_tensor(x.ty.dtype, conv_generic(&x.as_f64(), &h.as_f64()))
}

fn run_conv_direct(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let (x, h) = two_inputs(inputs)?;
    out_tensor(x.ty.dtype, conv_direct(&x.as_f64(), &h.as_f64()))
}

fn run_conv_fft(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let (x, h) = two_inputs(inputs)?;
    out_tensor(x.ty.dtype, conv_fft(&x.as_f64(), &h.as_f64()))
}

fn tensor_mat_dims(t: &Tensor) -> Result<(usize, usize), KernelError> {
    match t.ty.shape {
        Shape::Matrix(r, c) => Ok((r, c)),
        other => Err(kerr(format!("expected matrix, got {other}"))),
    }
}

fn run_conv2d_direct(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let (x, h) = two_inputs(inputs)?;
    let d1 = tensor_mat_dims(x)?;
    let d2 = tensor_mat_dims(h)?;
    let out = conv2d_direct(&x.as_f64(), d1, &h.as_f64(), d2);
    out_matrix(x.ty.dtype, d1.0 + d2.0 - 1, d1.1 + d2.1 - 1, out)
}

#[allow(clippy::needless_range_loop)] // j indexes the transposed dimension
fn run_fft2d_rowcol(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    let (r, c) = tensor_mat_dims(x)?;
    let data = x.as_f64();
    // Rows: real → complex.
    let mut rows: Vec<Vec<Complex64>> = (0..r)
        .map(|i| {
            let row: Vec<Complex64> = data[i * c..(i + 1) * c]
                .iter()
                .map(|&v| Complex64::new(v, 0.0))
                .collect();
            fft_mixed(&row, Direction::Forward)
        })
        .collect();
    // Columns on the complex intermediate.
    for j in 0..c {
        let col: Vec<Complex64> = (0..r).map(|i| rows[i][j]).collect();
        let t = fft_mixed(&col, Direction::Forward);
        for i in 0..r {
            rows[i][j] = t[i];
        }
    }
    let mut out = Vec::with_capacity(r * 2 * c);
    for row in &rows {
        out.extend(to_interleaved(row));
    }
    out_matrix(x.ty.dtype, r, 2 * c, out)
}

#[allow(clippy::needless_range_loop)] // j indexes the transposed dimension
fn run_fft2d_rowcol_radix2(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    let (r, c) = tensor_mat_dims(x)?;
    let data = x.as_f64();
    let mut rows: Vec<Vec<Complex64>> = (0..r)
        .map(|i| {
            let row: Vec<Complex64> = data[i * c..(i + 1) * c]
                .iter()
                .map(|&v| Complex64::new(v, 0.0))
                .collect();
            fft_radix2(&row, Direction::Forward)
        })
        .collect();
    for j in 0..c {
        let col: Vec<Complex64> = (0..r).map(|i| rows[i][j]).collect();
        let t = fft_radix2(&col, Direction::Forward);
        for i in 0..r {
            rows[i][j] = t[i];
        }
    }
    let mut out = Vec::with_capacity(r * 2 * c);
    for row in &rows {
        out.extend(to_interleaved(row));
    }
    out_matrix(x.ty.dtype, r, 2 * c, out)
}

#[allow(clippy::needless_range_loop)] // j indexes the transposed dimension
fn run_dct2d_rowcol_naive(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    let (r, c) = tensor_mat_dims(x)?;
    let data = x.as_f64();
    // Rows then columns with the naive 1-D transform.
    let mut tmp = vec![0.0; r * c];
    for i in 0..r {
        tmp[i * c..(i + 1) * c].copy_from_slice(&crate::dct::dct2_naive(&data[i * c..(i + 1) * c]));
    }
    let mut out = vec![0.0; r * c];
    for j in 0..c {
        let col: Vec<f64> = (0..r).map(|i| tmp[i * c + j]).collect();
        let t = crate::dct::dct2_naive(&col);
        for i in 0..r {
            out[i * c + j] = t[i];
        }
    }
    out_matrix(x.ty.dtype, r, c, out)
}

fn run_dct2d_rowcol(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    let (r, c) = tensor_mat_dims(x)?;
    out_matrix(x.ty.dtype, r, c, dct2_2d(&x.as_f64(), r, c))
}

fn run_matmul_general(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let (a, b) = two_inputs(inputs)?;
    let (r, k) = tensor_mat_dims(a)?;
    let (k2, c) = tensor_mat_dims(b)?;
    if k != k2 {
        return Err(kerr("inner dimension mismatch"));
    }
    let out = matmul_general(&a.as_f64(), &b.as_f64(), r, k, c).map_err(|e| kerr(e.to_string()))?;
    out_matrix(a.ty.dtype, r, c, out)
}

fn run_matmul_unrolled(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let (a, b) = two_inputs(inputs)?;
    let (r, _) = tensor_mat_dims(a)?;
    let out = matmul_unrolled(&a.as_f64(), &b.as_f64(), r).map_err(|e| kerr(e.to_string()))?;
    out_matrix(a.ty.dtype, r, r, out)
}

fn run_inv_analytic(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    let (n, _) = tensor_mat_dims(x)?;
    let out = inv_analytic(&x.as_f64(), n).map_err(|e| kerr(e.to_string()))?;
    out_matrix(x.ty.dtype, n, n, out)
}

fn run_inv_gauss(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    let (n, _) = tensor_mat_dims(x)?;
    let out = inv_gauss(&x.as_f64(), n).map_err(|e| kerr(e.to_string()))?;
    out_matrix(x.ty.dtype, n, n, out)
}

fn run_det_analytic(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    let (n, _) = tensor_mat_dims(x)?;
    let d = det_analytic(&x.as_f64(), n).map_err(|e| kerr(e.to_string()))?;
    out_tensor(x.ty.dtype, vec![d])
}

fn run_det_lu(inputs: &[Tensor]) -> Result<Tensor, KernelError> {
    let x = one_input(inputs)?;
    let (n, _) = tensor_mat_dims(x)?;
    let d = det_lu(&x.as_f64(), n).map_err(|e| kerr(e.to_string()))?;
    out_tensor(x.ty.dtype, vec![d])
}

// ---- size filters ----

fn any_size(_: &KernelSize) -> bool {
    true
}

fn size_pow2(s: &KernelSize) -> bool {
    s.0.first().is_some_and(|&n| is_pow2(n))
}

fn size_pow4(s: &KernelSize) -> bool {
    s.0.first().is_some_and(|&n| is_pow4(n))
}

fn size_dims_pow2(s: &KernelSize) -> bool {
    s.0.iter().take(2).all(|&d| is_pow2(d))
}

fn size_square_2_to_4(s: &KernelSize) -> bool {
    matches!(s.0.as_slice(), [r, k, c] if r == k && k == c && (2..=4).contains(r))
}

fn size_n_1_to_4(s: &KernelSize) -> bool {
    s.0.first().is_some_and(|&n| (1..=4).contains(&n))
}

// ---- op-count adapters ----

fn size_dim(s: &KernelSize, i: usize) -> usize {
    s.0.get(i).copied().unwrap_or(1)
}

macro_rules! ops1 {
    ($name:ident, $f:path) => {
        fn $name(s: &KernelSize) -> u64 {
            $f(size_dim(s, 0))
        }
    };
}

ops1!(ops_fft_generic, fft::ops::fft_generic);
ops1!(ops_fft_naive, fft::ops::dft_naive);
ops1!(ops_fft_radix2, fft::ops::fft_radix2);
ops1!(ops_fft_radix4, fft::ops::fft_radix4);
ops1!(ops_fft_mixed, fft::ops::fft_mixed);
ops1!(ops_fft_bluestein, fft::ops::fft_bluestein);
ops1!(ops_dct_generic, dct::ops::dct_generic);
ops1!(ops_dct_naive, dct::ops::dct_naive);
ops1!(ops_dct_fft, dct::ops::dct_fft);
ops1!(ops_inv_analytic, matrix::ops::inv_analytic);
ops1!(ops_inv_gauss, matrix::ops::inv_gauss);
ops1!(ops_det_analytic, matrix::ops::det_analytic);
ops1!(ops_det_lu, matrix::ops::det_lu);

fn ops_conv_generic(s: &KernelSize) -> u64 {
    conv::ops::conv_generic(size_dim(s, 0), size_dim(s, 1))
}

fn ops_conv_direct(s: &KernelSize) -> u64 {
    conv::ops::conv_direct(size_dim(s, 0), size_dim(s, 1))
}

fn ops_conv_fft(s: &KernelSize) -> u64 {
    conv::ops::conv_fft(size_dim(s, 0), size_dim(s, 1))
}

fn ops_conv2d(s: &KernelSize) -> u64 {
    conv::ops::conv2d_direct(
        size_dim(s, 0),
        size_dim(s, 1),
        size_dim(s, 2),
        size_dim(s, 3),
    )
}

fn ops_matmul_general(s: &KernelSize) -> u64 {
    matrix::ops::matmul_general(size_dim(s, 0), size_dim(s, 1), size_dim(s, 2))
}

fn ops_matmul_unrolled(s: &KernelSize) -> u64 {
    matrix::ops::matmul_unrolled(size_dim(s, 0))
}

fn ops_fft2d(s: &KernelSize) -> u64 {
    let (r, c) = (size_dim(s, 0), size_dim(s, 1));
    r as u64 * fft::ops::fft_mixed(c) + c as u64 * fft::ops::fft_mixed(r)
}

fn ops_fft2d_radix2(s: &KernelSize) -> u64 {
    let (r, c) = (size_dim(s, 0), size_dim(s, 1));
    r as u64 * fft::ops::fft_radix2(c) + c as u64 * fft::ops::fft_radix2(r)
}

fn ops_dct2d_naive(s: &KernelSize) -> u64 {
    let (r, c) = (size_dim(s, 0), size_dim(s, 1));
    r as u64 * dct::ops::dct_naive(c) + c as u64 * dct::ops::dct_naive(r)
}

fn ops_dct2d(s: &KernelSize) -> u64 {
    dct::ops::dct_2d(size_dim(s, 0), size_dim(s, 1))
}

/// The complete code library: every implementation for every intensive
/// computing actor kind.
#[derive(Debug, Clone)]
pub struct CodeLibrary {
    kernels: Vec<Kernel>,
}

impl Default for CodeLibrary {
    fn default() -> Self {
        Self::new()
    }
}

impl CodeLibrary {
    /// Build the built-in library.
    pub fn new() -> Self {
        use ActorKind::*;
        let k = |name, actor, general, can_size, run_fn, ops_fn| Kernel {
            name,
            actor,
            general,
            can_size,
            run_fn,
            ops_fn,
        };
        let kernels = vec![
            // FFT family (Figure 1 of the paper). The *generic* entry is
            // the any-length library function a template-based generator
            // links in (Algorithm 1's general implementation); the others
            // are the scale-specialised choices.
            k(
                "generic",
                Fft,
                true,
                any_size as fn(&KernelSize) -> bool,
                run_fft_generic as fn(&[Tensor]) -> Result<Tensor, KernelError>,
                ops_fft_generic as fn(&KernelSize) -> u64,
            ),
            k(
                "naive_dft",
                Fft,
                false,
                any_size,
                run_fft_naive,
                ops_fft_naive,
            ),
            k(
                "radix2",
                Fft,
                false,
                size_pow2,
                run_fft_radix2,
                ops_fft_radix2,
            ),
            k(
                "radix4",
                Fft,
                false,
                size_pow4,
                run_fft_radix4,
                ops_fft_radix4,
            ),
            k("mixed", Fft, false, any_size, run_fft_mixed, ops_fft_mixed),
            k(
                "bluestein",
                Fft,
                false,
                any_size,
                run_fft_bluestein,
                ops_fft_bluestein,
            ),
            // IFFT family.
            k(
                "generic",
                Ifft,
                true,
                any_size,
                run_ifft_generic,
                ops_fft_generic,
            ),
            k(
                "naive_dft",
                Ifft,
                false,
                any_size,
                run_ifft_naive,
                ops_fft_naive,
            ),
            k(
                "radix2",
                Ifft,
                false,
                size_pow2,
                run_ifft_radix2,
                ops_fft_radix2,
            ),
            k(
                "radix4",
                Ifft,
                false,
                size_pow4,
                run_ifft_radix4,
                ops_fft_radix4,
            ),
            k(
                "mixed",
                Ifft,
                false,
                any_size,
                run_ifft_mixed,
                ops_fft_mixed,
            ),
            k(
                "bluestein",
                Ifft,
                false,
                any_size,
                run_ifft_bluestein,
                ops_fft_bluestein,
            ),
            // DCT / IDCT.
            k(
                "generic",
                Dct,
                true,
                any_size,
                run_dct_generic,
                ops_dct_generic,
            ),
            k("naive", Dct, false, any_size, run_dct_naive, ops_dct_naive),
            k("via_fft", Dct, false, any_size, run_dct_fft, ops_dct_fft),
            k(
                "generic",
                Idct,
                true,
                any_size,
                run_idct_generic,
                ops_dct_generic,
            ),
            k(
                "naive",
                Idct,
                false,
                any_size,
                run_idct_naive,
                ops_dct_naive,
            ),
            k("via_fft", Idct, false, any_size, run_idct_fft, ops_dct_fft),
            // Convolution.
            k(
                "generic",
                Conv,
                true,
                any_size,
                run_conv_generic,
                ops_conv_generic,
            ),
            k(
                "direct",
                Conv,
                false,
                any_size,
                run_conv_direct,
                ops_conv_direct,
            ),
            k("via_fft", Conv, false, any_size, run_conv_fft, ops_conv_fft),
            k(
                "direct",
                Conv2d,
                true,
                any_size,
                run_conv2d_direct,
                ops_conv2d,
            ),
            // 2-D transforms: a generic row-column pass plus
            // size-specialised variants, so Algorithm 1 has real choices in
            // two dimensions as well.
            k(
                "rowcol_mixed",
                Fft2d,
                true,
                any_size,
                run_fft2d_rowcol,
                ops_fft2d,
            ),
            k(
                "rowcol_radix2",
                Fft2d,
                false,
                size_dims_pow2,
                run_fft2d_rowcol_radix2,
                ops_fft2d_radix2,
            ),
            k(
                "rowcol_fft",
                Dct2d,
                true,
                any_size,
                run_dct2d_rowcol,
                ops_dct2d,
            ),
            k(
                "rowcol_naive",
                Dct2d,
                false,
                any_size,
                run_dct2d_rowcol_naive,
                ops_dct2d_naive,
            ),
            // Matrix algebra.
            k(
                "general",
                MatMul,
                true,
                any_size,
                run_matmul_general,
                ops_matmul_general,
            ),
            k(
                "unrolled",
                MatMul,
                false,
                size_square_2_to_4,
                run_matmul_unrolled,
                ops_matmul_unrolled,
            ),
            k(
                "gauss",
                MatInv,
                true,
                any_size,
                run_inv_gauss,
                ops_inv_gauss,
            ),
            k(
                "analytic",
                MatInv,
                false,
                size_n_1_to_4,
                run_inv_analytic,
                ops_inv_analytic,
            ),
            k("lu", MatDet, true, any_size, run_det_lu, ops_det_lu),
            k(
                "analytic",
                MatDet,
                false,
                size_n_1_to_4,
                run_det_analytic,
                ops_det_analytic,
            ),
        ];
        CodeLibrary { kernels }
    }

    /// `loadCodeLibrary(ActorType)`: the implementation list for one actor
    /// kind.
    pub fn for_actor(&self, kind: ActorKind) -> Vec<&Kernel> {
        self.kernels.iter().filter(|k| k.actor == kind).collect()
    }

    /// `getGeneralImplementation()`: the fallback implementation.
    pub fn general_for(&self, kind: ActorKind) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.actor == kind && k.general)
    }

    /// Find one implementation by actor kind and name.
    pub fn find(&self, kind: ActorKind, name: &str) -> Option<&Kernel> {
        self.kernels
            .iter()
            .find(|k| k.actor == kind && k.name == name)
    }

    /// All kernels.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_f32(vals: Vec<f64>) -> Tensor {
        let n = vals.len();
        Tensor::from_f64(SignalType::vector(DataType::F32, n), vals).unwrap()
    }

    #[test]
    fn library_has_general_impl_for_every_intensive_kind() {
        let lib = CodeLibrary::new();
        for kind in ActorKind::ALL {
            if kind.class() == hcg_model::KindClass::Intensive {
                assert!(lib.general_for(kind).is_some(), "{kind}");
                assert!(!lib.for_actor(kind).is_empty(), "{kind}");
            }
        }
    }

    #[test]
    fn fft_family_is_one_to_many() {
        let lib = CodeLibrary::new();
        assert!(lib.for_actor(ActorKind::Fft).len() >= 5);
    }

    #[test]
    fn size_filters_match_algorithm1_description() {
        let lib = CodeLibrary::new();
        let r2 = lib.find(ActorKind::Fft, "radix2").unwrap();
        // "the Radix-2 FFT implementation aims to speed up the FFT with the
        // input size of 2^n" (paper §3.2.1).
        assert!(r2.can_handle_size(&KernelSize(vec![1024])));
        assert!(!r2.can_handle_size(&KernelSize(vec![1000])));
        let r4 = lib.find(ActorKind::Fft, "radix4").unwrap();
        assert!(r4.can_handle_size(&KernelSize(vec![1024])));
        assert!(!r4.can_handle_size(&KernelSize(vec![512])));
    }

    #[test]
    fn dtype_filter_rejects_integers() {
        let lib = CodeLibrary::new();
        let k = lib.general_for(ActorKind::Fft).unwrap();
        assert!(k.can_handle_dtype(DataType::F32));
        assert!(!k.can_handle_dtype(DataType::I32));
    }

    #[test]
    fn all_fft_impls_agree_on_shared_sizes() {
        let lib = CodeLibrary::new();
        let x = vec_f32((0..16).map(|i| (i as f64 * 0.4).sin()).collect());
        let reference = lib
            .find(ActorKind::Fft, "naive_dft")
            .unwrap()
            .run(std::slice::from_ref(&x))
            .unwrap();
        for k in lib.for_actor(ActorKind::Fft) {
            if k.can_handle_size(&KernelSize(vec![16])) {
                let out = k.run(std::slice::from_ref(&x)).unwrap();
                assert!(out.max_abs_diff(&reference) < 1e-6, "{} diverges", k.name);
            }
        }
    }

    #[test]
    fn fft_output_is_interleaved_double_length() {
        let lib = CodeLibrary::new();
        let x = vec_f32(vec![1.0, 0.0, 0.0, 0.0]);
        let out = lib.general_for(ActorKind::Fft).unwrap().run(&[x]).unwrap();
        assert_eq!(out.len(), 8);
        // Impulse: flat spectrum (1 + 0i per bin).
        let v = out.as_f64();
        for b in 0..4 {
            assert!((v[2 * b] - 1.0).abs() < 1e-9);
            assert!(v[2 * b + 1].abs() < 1e-9);
        }
    }

    #[test]
    fn ifft_inverts_fft_via_library() {
        let lib = CodeLibrary::new();
        let x = vec_f32((0..8).map(|i| i as f64 * 0.25 - 1.0).collect());
        let spec = lib
            .find(ActorKind::Fft, "radix2")
            .unwrap()
            .run(std::slice::from_ref(&x))
            .unwrap();
        let back = lib
            .find(ActorKind::Ifft, "radix2")
            .unwrap()
            .run(&[spec])
            .unwrap();
        assert!(back.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn matdet_returns_scalar() {
        let lib = CodeLibrary::new();
        let m = Tensor::from_f64(
            SignalType::matrix(DataType::F64, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let d = lib
            .find(ActorKind::MatDet, "analytic")
            .unwrap()
            .run(&[m])
            .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.as_f64()[0], -2.0);
    }

    #[test]
    fn kernel_size_from_inputs() {
        use hcg_model::SignalType as ST;
        assert_eq!(
            KernelSize::from_inputs(ActorKind::Fft, &[ST::vector(DataType::F32, 256)]),
            Some(KernelSize(vec![256]))
        );
        assert_eq!(
            KernelSize::from_inputs(ActorKind::Ifft, &[ST::vector(DataType::F32, 512)]),
            Some(KernelSize(vec![256]))
        );
        assert_eq!(
            KernelSize::from_inputs(
                ActorKind::Conv,
                &[ST::vector(DataType::F32, 100), ST::vector(DataType::F32, 9)]
            ),
            Some(KernelSize(vec![100, 9]))
        );
        assert_eq!(
            KernelSize::from_inputs(
                ActorKind::MatMul,
                &[
                    ST::matrix(DataType::F64, 3, 4),
                    ST::matrix(DataType::F64, 4, 2)
                ]
            ),
            Some(KernelSize(vec![3, 4, 2]))
        );
        assert_eq!(KernelSize::from_inputs(ActorKind::Add, &[]), None);
    }

    #[test]
    fn wrong_arity_is_an_error_not_a_panic() {
        let lib = CodeLibrary::new();
        let x = vec_f32(vec![1.0, 2.0]);
        assert!(lib
            .general_for(ActorKind::Conv)
            .unwrap()
            .run(std::slice::from_ref(&x))
            .is_err());
    }
}
