//! DCT implementation family: naive `O(n²)` DCT-II/DCT-III and FFT-based
//! `O(n log n)` variants, plus separable 2-D transforms.

use crate::complex::Complex64;
use crate::fft::{fft_mixed, Direction};
use std::f64::consts::PI;

/// Naive DCT-II: `y[k] = Σ x[j]·cos(π(2j+1)k / 2n)`.
pub fn dct2_naive(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    let mut out = vec![0.0; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, &x) in input.iter().enumerate() {
            acc += x * (PI * (2 * j + 1) as f64 * k as f64 / (2.0 * n as f64)).cos();
        }
        *slot = acc;
    }
    out
}

/// Naive DCT-III (the inverse of DCT-II up to a `2/n` factor):
/// `y[j] = x[0]/2 + Σ_{k≥1} x[k]·cos(π(2j+1)k / 2n)`, scaled by `2/n` so
/// that `dct3_naive(dct2_naive(x)) == x`.
pub fn dct3_naive(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = vec![0.0; n];
    for (j, slot) in out.iter_mut().enumerate() {
        let mut acc = input[0] / 2.0;
        for (k, &x) in input.iter().enumerate().skip(1) {
            acc += x * (PI * (2 * j + 1) as f64 * k as f64 / (2.0 * n as f64)).cos();
        }
        *slot = acc * 2.0 / n as f64;
    }
    out
}

/// DCT-II via a length-`2n` complex FFT (Makhoul's even-extension method):
/// asymptotically `O(n log n)`.
pub fn dct2_fft(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    // Even extension: v = [x0..x_{n-1}, x_{n-1}..x0], length 2n.
    let mut v = Vec::with_capacity(2 * n);
    v.extend(input.iter().map(|&x| Complex64::new(x, 0.0)));
    v.extend(input.iter().rev().map(|&x| Complex64::new(x, 0.0)));
    let spec = fft_mixed(&v, Direction::Forward);
    (0..n)
        .map(|k| {
            let w = Complex64::cis(-PI * k as f64 / (2.0 * n as f64));
            (spec[k] * w).re / 2.0
        })
        .collect()
}

/// DCT-III via FFT, scaled to invert [`dct2_fft`]/[`dct2_naive`] exactly
/// like [`dct3_naive`] does.
///
/// Derivation: [`dct2_fft`] computes `X[k] = Re(F(v)[k]·e^(−iπk/2n))/2`
/// where `v` is the even extension of `x` and `F(v)[n] = 0`. Inverting,
/// `F(v)[k] = 2·X[k]·e^(iπk/2n)` with conjugate symmetry for the negative
/// frequencies, so one inverse FFT of the reconstructed spectrum recovers
/// `v` (whose first `n` entries are `x`).
pub fn dct3_fft(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut spec = vec![Complex64::ZERO; 2 * n];
    for k in 0..n {
        let w = Complex64::cis(PI * k as f64 / (2.0 * n as f64));
        spec[k] = w.scale(2.0 * input[k]);
    }
    // spec[n] stays 0; negative frequencies are the conjugates.
    for k in 1..n {
        spec[2 * n - k] = spec[k].conj();
    }
    let v = fft_mixed(&spec, Direction::Inverse);
    (0..n).map(|j| v[j].re).collect()
}

/// Separable 2-D DCT-II over a row-major `rows×cols` matrix: 1-D DCT on
/// every row, then on every column.
pub fn dct2_2d(input: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    assert_eq!(input.len(), rows * cols);
    let mut tmp = vec![0.0; rows * cols];
    for r in 0..rows {
        let row = dct2_fft(&input[r * cols..(r + 1) * cols]);
        tmp[r * cols..(r + 1) * cols].copy_from_slice(&row);
    }
    let mut out = vec![0.0; rows * cols];
    let mut col = vec![0.0; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = tmp[r * cols + c];
        }
        let t = dct2_fft(&col);
        for r in 0..rows {
            out[r * cols + c] = t[r];
        }
    }
    out
}

/// Analytic operation counts for the deterministic cost meter.
pub mod ops {
    /// Generic DCT: any-length, runtime-twiddle generic library function
    /// (~3x the tuned FFT-based transform).
    pub fn dct_generic(n: usize) -> u64 {
        3 * dct_fft(n) + 32
    }

    /// Naive DCT-II/III: `n²` MACs.
    pub fn dct_naive(n: usize) -> u64 {
        (n as u64).saturating_mul(n as u64)
    }

    /// FFT-based DCT: one length-2n mixed FFT plus twiddles.
    pub fn dct_fft(n: usize) -> u64 {
        crate::fft::ops::fft_mixed(2 * n) + 4 * n as u64 + 32
    }

    /// Separable 2-D DCT.
    pub fn dct_2d(rows: usize, cols: usize) -> u64 {
        rows as u64 * dct_fft(cols) + cols as u64 * dct_fft(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.37).sin() + 0.2).collect()
    }

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn dct2_of_constant_concentrates_in_dc() {
        let y = dct2_naive(&[1.0; 8]);
        assert!((y[0] - 8.0).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_dct_matches_naive() {
        for n in [1usize, 2, 3, 8, 16, 30, 64, 100] {
            let x = signal(n);
            assert!(close(&dct2_naive(&x), &dct2_fft(&x), 1e-8), "n={n}");
        }
    }

    #[test]
    fn dct3_inverts_dct2() {
        for n in [1usize, 4, 16, 33] {
            let x = signal(n);
            let back = dct3_naive(&dct2_naive(&x));
            assert!(close(&back, &x, 1e-9), "n={n}");
        }
    }

    #[test]
    fn dct3_fft_matches_naive() {
        for n in [1usize, 2, 8, 16, 30] {
            let x = signal(n);
            assert!(
                close(&dct3_naive(&x), &dct3_fft(&x), 1e-8),
                "n={n}: {:?} vs {:?}",
                dct3_naive(&x),
                dct3_fft(&x)
            );
        }
    }

    #[test]
    fn dct_2d_matches_double_naive() {
        let (r, c) = (4, 6);
        let x: Vec<f64> = (0..r * c).map(|i| (i as f64 * 0.13).cos()).collect();
        // Reference: rows then cols with the naive transform.
        let mut tmp = vec![0.0; r * c];
        for i in 0..r {
            tmp[i * c..(i + 1) * c].copy_from_slice(&dct2_naive(&x[i * c..(i + 1) * c]));
        }
        let mut reference = vec![0.0; r * c];
        for j in 0..c {
            let col: Vec<f64> = (0..r).map(|i| tmp[i * c + j]).collect();
            let t = dct2_naive(&col);
            for i in 0..r {
                reference[i * c + j] = t[i];
            }
        }
        assert!(close(&dct2_2d(&x, r, c), &reference, 1e-8));
    }

    #[test]
    fn empty_inputs() {
        assert!(dct2_naive(&[]).is_empty());
        assert!(dct2_fft(&[]).is_empty());
        assert!(dct3_naive(&[]).is_empty());
    }

    #[test]
    fn op_models_cross_over() {
        assert!(ops::dct_naive(4) < ops::dct_fft(4));
        assert!(ops::dct_fft(1024) < ops::dct_naive(1024));
    }
}
