//! Table 2 bench: execute one generated model step on the VM for each of
//! the six paper benchmarks × three generators (ARM+GCC platform).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
use hcg_core::{CodeGenerator, HcgGen};
use hcg_isa::Arch;
use hcg_kernels::CodeLibrary;
use hcg_model::library;
use hcg_vm::Machine;

fn bench_models(c: &mut Criterion) {
    let lib = CodeLibrary::new();
    let generators: Vec<Box<dyn CodeGenerator>> = vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(HcgGen::new()),
    ];
    let mut group = c.benchmark_group("table2_step");
    // Paper scales are heavy for the interpreting VM; bench reduced scales
    // with the same structure.
    let models = [
        library::fft_model(256),
        library::dct_model(256),
        library::conv_model(256, 16),
        library::highpass_model(256),
        library::lowpass_model(256),
        library::fir_model(256, 4),
    ];
    for model in &models {
        for gen in &generators {
            let program = gen.generate(model, Arch::Neon128).expect("generates");
            let short = model.name.split('_').next().unwrap_or("?").to_owned();
            group.bench_with_input(
                BenchmarkId::new(gen.name(), short),
                &program,
                |b, program| {
                    let mut machine = Machine::new(program, &lib);
                    b.iter(|| machine.step().expect("steps"));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_models
}
criterion_main!(benches);
