//! Figure 5 bench: HCG's generated step across the four paper platforms
//! (the cost-model numbers come from `repro -- fig5`; this measures the
//! actual VM execution per architecture).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcg_core::{CodeGenerator, HcgGen};
use hcg_isa::Arch;
use hcg_kernels::CodeLibrary;
use hcg_model::library;
use hcg_vm::Machine;

fn bench_arch_sweep(c: &mut Criterion) {
    let lib = CodeLibrary::new();
    let generator = HcgGen::new();
    let mut group = c.benchmark_group("fig5_arch_sweep");
    for arch in Arch::ALL {
        for model in [library::fir_model(1024, 4), library::lowpass_model(1024)] {
            let program = generator.generate(&model, arch).expect("generates");
            let label = format!("{}/{}", model.name.split('_').next().unwrap_or("?"), arch);
            group.bench_function(BenchmarkId::new("hcg_step", label), |b| {
                let mut machine = Machine::new(&program, &lib);
                b.iter(|| machine.step().expect("steps"));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_arch_sweep
}
criterion_main!(benches);
