//! End-to-end fleet bench: wall-clock of the full model × generator × arch
//! compile sweep, sequentially and on the work-stealing pool at several
//! worker counts. Speedup scales with the host's available cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcg_bench::experiments::benchmark_sessions;
use hcg_bench::fleet::{run_fleet, run_fleet_sequential, FLEET_ARCHES};

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let sessions = benchmark_sessions();
            run_fleet_sequential(&sessions, &FLEET_ARCHES)
        });
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("pool", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let sessions = benchmark_sessions();
                    run_fleet(&sessions, &FLEET_ARCHES, threads)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_fleet
}
criterion_main!(benches);
