//! Instruction-selection micro-bench: the linear `candidates()` scan of
//! `find_instruction` vs the bucketed `InstrIndex` lookup, over a
//! representative candidate-tree mix (single-op hits, a compound hit, a
//! shift-root hit and an unmatchable miss).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcg_graph::matching::{find_instruction, find_instruction_indexed, MatchMemo};
use hcg_graph::{DfgInput, ValTree};
use hcg_isa::{sets, Arch, InstrIndex};
use hcg_model::op::ElemOp;
use hcg_model::DataType;
use std::hint::black_box;

fn tree_zoo() -> Vec<ValTree> {
    let leaf = |i| ValTree::Leaf(DfgInput::External(i));
    let node = |op, args| ValTree::Op { op, args };
    vec![
        node(ElemOp::Sub, vec![leaf(0), leaf(1)]),
        node(
            ElemOp::Shr(1),
            vec![node(ElemOp::Add, vec![leaf(0), leaf(1)])],
        ),
        node(
            ElemOp::Add,
            vec![leaf(0), node(ElemOp::Mul, vec![leaf(1), leaf(2)])],
        ),
        node(ElemOp::Mul, vec![leaf(0), leaf(1)]),
        node(ElemOp::Abs, vec![leaf(0)]),
        node(ElemOp::Div, vec![leaf(0), leaf(1)]), // i32 miss on every set
    ]
}

fn bench_instr_select(c: &mut Criterion) {
    let trees = tree_zoo();
    let mut group = c.benchmark_group("instr_select");
    for arch in Arch::ALL {
        let set = sets::builtin(arch);
        let index = InstrIndex::build(&set);
        group.bench_with_input(BenchmarkId::new("linear", arch), &set, |b, set| {
            b.iter(|| {
                for t in &trees {
                    black_box(find_instruction(set, DataType::I32, 4, black_box(t)));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("indexed", arch), &set, |b, set| {
            b.iter(|| {
                for t in &trees {
                    black_box(find_instruction_indexed(
                        set,
                        &index,
                        DataType::I32,
                        4,
                        black_box(t),
                    ));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("memoized", arch), &set, |b, set| {
            b.iter(|| {
                // Fresh memo per iteration: the realistic per-region shape,
                // where repeated trees inside one region hit the cache.
                let mut memo = MatchMemo::new();
                for _ in 0..4 {
                    for t in &trees {
                        black_box(memo.find(set, &index, DataType::I32, 4, black_box(t)));
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(500))
        .warm_up_time(std::time::Duration::from_millis(100));
    targets = bench_instr_select
}
criterion_main!(benches);
