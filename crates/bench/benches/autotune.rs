//! Algorithm 1 bench: pre-calculation cost (cold) vs selection-history hit
//! (warm), with both meters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcg_kernels::{Autotuner, CodeLibrary, KernelSize, Meter};
use hcg_model::{ActorKind, DataType};

fn bench_autotune(c: &mut Criterion) {
    let lib = CodeLibrary::new();
    let mut group = c.benchmark_group("algorithm1");
    for n in [64usize, 256, 1024] {
        let size = KernelSize(vec![n]);
        group.bench_with_input(BenchmarkId::new("cold_opcount", n), &size, |b, size| {
            b.iter(|| {
                let mut tuner = Autotuner::new(Meter::OpCount);
                tuner
                    .select(&lib, ActorKind::Fft, DataType::F32, size)
                    .expect("selects")
                    .0
                    .name
            })
        });
        group.bench_with_input(BenchmarkId::new("warm_history", n), &size, |b, size| {
            let mut tuner = Autotuner::new(Meter::OpCount);
            tuner
                .select(&lib, ActorKind::Fft, DataType::F32, size)
                .expect("selects");
            b.iter(|| {
                tuner
                    .select(&lib, ActorKind::Fft, DataType::F32, size)
                    .expect("selects")
                    .0
                    .name
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_autotune
}
criterion_main!(benches);
