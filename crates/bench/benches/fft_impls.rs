//! Figure 1 bench: wall-clock time of each FFT implementation across input
//! lengths — the measurement behind "no one implementation can always
//! perform better than the others".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcg_kernels::{generate_test_input, CodeLibrary, KernelSize};
use hcg_model::{ActorKind, DataType};

fn bench_fft_impls(c: &mut Criterion) {
    let lib = CodeLibrary::new();
    let mut group = c.benchmark_group("fig1_fft_impls");
    for n in [16usize, 64, 256, 1000, 1024] {
        let size = KernelSize(vec![n]);
        let input = generate_test_input(ActorKind::Fft, DataType::F32, &size, 42);
        for kernel in lib.for_actor(ActorKind::Fft) {
            if !kernel.can_handle_size(&size) {
                continue;
            }
            // The naive DFT at large n dominates runtime; sample it less.
            if kernel.name == "naive_dft" && n > 256 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(kernel.name, n), &input, |b, input| {
                b.iter(|| kernel.run(input).expect("fft runs"))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_fft_impls
}
criterion_main!(benches);
