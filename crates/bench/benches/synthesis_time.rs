//! §4.1 generation-time bench: full code generation (parse-to-program) per
//! generator per benchmark model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
use hcg_core::{CodeGenerator, HcgGen};
use hcg_isa::Arch;
use hcg_model::library;

fn bench_synthesis(c: &mut Criterion) {
    let generators: Vec<Box<dyn CodeGenerator>> = vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(HcgGen::new()),
    ];
    let mut group = c.benchmark_group("gentime");
    for model in library::paper_benchmarks() {
        for gen in &generators {
            let short = model.name.split('_').next().unwrap_or("?").to_owned();
            group.bench_with_input(BenchmarkId::new(gen.name(), short), &model, |b, model| {
                b.iter(|| gen.generate(model, Arch::Neon128).expect("generates"))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_synthesis
}
criterion_main!(benches);
