//! Mapping-search bench: greedy instruction selection vs beam search at
//! several widths, end-to-end through `HcgGen` on the batch-heavy models
//! (the cost/quality comparison itself comes from `repro -- search`; this
//! measures what the beam costs in generation time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcg_core::{CodeGenerator, HcgGen, HcgOptions, MappingStrategy};
use hcg_isa::Arch;
use hcg_model::library;

fn bench_mapping_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_search");
    for model in [library::fir_model(1024, 4), library::lowpass_model(1024)] {
        let strategies = [
            MappingStrategy::Greedy,
            MappingStrategy::Beam { width: 2 },
            MappingStrategy::Beam { width: 4 },
            MappingStrategy::Beam { width: 8 },
        ];
        for mapping in strategies {
            let label = format!(
                "{}/{}",
                model.name.split('_').next().unwrap_or("?"),
                mapping.label()
            );
            group.bench_function(BenchmarkId::new("generate", label), |b| {
                let generator = HcgGen::with_options(HcgOptions {
                    mapping,
                    ..HcgOptions::default()
                });
                b.iter(|| {
                    generator
                        .generate(&model, Arch::Neon128)
                        .expect("generates")
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_mapping_search
}
criterion_main!(benches);
