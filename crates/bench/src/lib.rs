//! # hcg-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4) from
//! the three generators and the VM cost models. The `repro` binary prints
//! paper-formatted tables; the Criterion benches under `benches/` time the
//! same pipelines.

#![warn(missing_docs)]

pub mod cli;
pub mod consistency;
pub mod experiments;
pub mod fleet;
pub mod incremental;
pub mod obsbench;
pub mod profile;
pub mod search;
pub mod serve;

pub use cli::{parse_args, CommonArgs};
pub use consistency::{check_consistency, Consistency};
pub use experiments::*;
pub use fleet::{run_fleet, run_fleet_sequential, FleetJob, FleetOutcome, FleetRun};
pub use incremental::{param_edit, run_incremental_bench, IncrementalBenchConfig, IncrementalRow};
pub use obsbench::{
    obs_bench_json, record_cost_ns_per_request, render_obs_bench, run_obs_bench, ObsBenchConfig,
    ObsBenchReport, ObsLayerResult,
};
pub use profile::{profile_json, profile_matrix, ProfileEntry};
pub use search::{render_search, run_search, search_json, SearchReport, SearchRow};
pub use serve::{
    render_serve_bench, run_serve_bench, run_serve_smoke, serve_bench_json, ServeBenchConfig,
    ServeBenchReport,
};
