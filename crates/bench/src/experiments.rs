//! Experiment drivers: one function per paper table/figure, each returning
//! structured rows that the `repro` binary formats.

use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
use hcg_core::{CodeGenerator, CompileSession, HcgGen, HcgOptions, StageReport};
use hcg_isa::Arch;
use hcg_kernels::{generate_test_input, Autotuner, CodeLibrary, KernelSize, Meter};
use hcg_model::{library, ActorKind, DataType, Model};
use hcg_vm::{paper_platforms, Compiler, CostModel};
use std::time::Instant;

/// The six paper benchmark models at paper scales.
pub fn benchmark_models() -> Vec<Model> {
    library::paper_benchmarks()
}

/// One [`CompileSession`] per paper benchmark — the fleet runner's unit of
/// work. Front-end artifacts (types, schedule, dispatch) are computed once
/// per session and shared by every generator × architecture combination
/// driven through it.
pub fn benchmark_sessions() -> Vec<CompileSession> {
    benchmark_models()
        .into_iter()
        .map(CompileSession::new)
        .collect()
}

/// Short display name for a benchmark model (strips size suffixes).
pub fn short_name(model: &Model) -> String {
    model
        .name
        .split('_')
        .next()
        .unwrap_or(&model.name)
        .to_owned()
}

/// Iterations used per architecture: the paper runs 10 000 on ARM and 10×
/// that on Intel ("the number of executions on Intel is 10x than ARM").
pub fn iterations_for(arch: Arch) -> u64 {
    match arch {
        Arch::Neon128 => 10_000,
        Arch::Sse128 | Arch::Avx256 => 100_000,
    }
}

/// One row of Table 2 / one bar group of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRow {
    /// Benchmark name.
    pub model: String,
    /// Simulink-Coder-like execution time (seconds).
    pub simulink_s: f64,
    /// DFSynth-like execution time (seconds).
    pub dfsynth_s: f64,
    /// HCG execution time (seconds).
    pub hcg_s: f64,
}

impl ExecRow {
    /// HCG improvement over the Coder baseline, percent.
    pub fn improvement_vs_simulink(&self) -> f64 {
        (1.0 - self.hcg_s / self.simulink_s) * 100.0
    }

    /// HCG improvement over the DFSynth baseline, percent.
    pub fn improvement_vs_dfsynth(&self) -> f64 {
        (1.0 - self.hcg_s / self.dfsynth_s) * 100.0
    }
}

/// Generate + cost all three generators for one model on one platform,
/// reusing the session's cached front-end artifacts.
pub fn exec_row(session: &CompileSession, platform: CostModel, iterations: u64) -> ExecRow {
    let lib = CodeLibrary::new();
    let coder = SimulinkCoderGen::new();
    let dfsynth = DfSynthGen::new();
    let hcg = HcgGen::new();
    let time = |g: &dyn CodeGenerator| {
        let p = session
            .generate(g, platform.arch)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", g.name(), session.model().name));
        platform.time_seconds(&p, &lib, iterations)
    };
    ExecRow {
        model: short_name(session.model()),
        simulink_s: time(&coder),
        dfsynth_s: time(&dfsynth),
        hcg_s: time(&hcg),
    }
}

/// Unwrap pool results, re-raising any isolated job panic with its message.
fn unwrap_jobs<T>(results: Vec<hcg_exec::JobResult<T>>) -> Vec<T> {
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("experiment job panicked: {p}")))
        .collect()
}

/// **Table 2**: execution time of the six benchmarks on the paper's primary
/// platform (ARM Cortex-A72-like, GCC-like), 10 000 iterations.
///
/// Rows are computed on the work-stealing pool; they are deterministic
/// (cost-model arithmetic, not wall clock), so any worker count produces
/// identical rows in identical order.
pub fn table2() -> Vec<ExecRow> {
    table2_threads(0)
}

/// [`table2`] with an explicit worker count (`0` = available parallelism).
pub fn table2_threads(threads: usize) -> Vec<ExecRow> {
    let platform = CostModel::new(Arch::Neon128, Compiler::GccLike);
    let sessions = benchmark_sessions();
    let jobs: Vec<_> = sessions
        .iter()
        .map(|s| move || exec_row(s, platform, iterations_for(Arch::Neon128)))
        .collect();
    unwrap_jobs(hcg_exec::run_jobs(threads, jobs))
}

/// **Figure 5**: the four platform sweeps, in the paper's subfigure order
/// (ARM+GCC, Intel+GCC, ARM+Clang, Intel+Clang). One session per model is
/// shared across all four platforms, so each model's front end runs once
/// for the whole figure.
pub fn fig5() -> Vec<(CostModel, Vec<ExecRow>)> {
    fig5_threads(0)
}

/// [`fig5`] with an explicit worker count (`0` = available parallelism).
/// All `platform × model` cells fan out as independent pool jobs; the
/// deterministic result ordering reassembles the paper's subfigure layout.
pub fn fig5_threads(threads: usize) -> Vec<(CostModel, Vec<ExecRow>)> {
    let sessions = benchmark_sessions();
    let platforms = paper_platforms();
    let jobs: Vec<_> = platforms
        .iter()
        .flat_map(|&platform| {
            sessions
                .iter()
                .map(move |s| move || exec_row(s, platform, iterations_for(platform.arch)))
        })
        .collect();
    let mut rows = unwrap_jobs(hcg_exec::run_jobs(threads, jobs)).into_iter();
    platforms
        .into_iter()
        .map(|platform| {
            let per_platform = (0..sessions.len())
                .map(|_| rows.next().expect("one row per platform × model"))
                .collect();
            (platform, per_platform)
        })
        .collect()
}

/// One point of **Figure 1**: cost of each FFT implementation at one input
/// length (deterministic operation counts by default; `wall_clock` switches
/// to timed execution like the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Input length.
    pub n: usize,
    /// `(implementation name, cost)`; cost is `None` when the
    /// implementation cannot handle the length.
    pub costs: Vec<(String, Option<u64>)>,
}

/// **Figure 1** sweep over FFT input lengths.
pub fn fig1(lengths: &[usize], wall_clock: bool) -> Vec<Fig1Row> {
    let lib = CodeLibrary::new();
    lengths
        .iter()
        .map(|&n| {
            let size = KernelSize(vec![n]);
            let input = generate_test_input(ActorKind::Fft, DataType::F32, &size, 42);
            let costs = lib
                .for_actor(ActorKind::Fft)
                .into_iter()
                .map(|k| {
                    let cost = if !k.can_handle_size(&size) {
                        None
                    } else if wall_clock {
                        let start = Instant::now();
                        let reps = (1_000_000 / k.op_count(&size).max(1)).clamp(1, 50);
                        for _ in 0..reps {
                            k.run(&input).expect("fft runs");
                        }
                        Some((start.elapsed().as_nanos() as u64) / reps.max(1))
                    } else {
                        Some(k.op_count(&size))
                    };
                    (k.name.to_owned(), cost)
                })
                .collect();
            Fig1Row { n, costs }
        })
        .collect()
}

/// One row of the §4.1 memory comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRow {
    /// Benchmark name.
    pub model: String,
    /// Buffer bytes per generator: (simulink, dfsynth, hcg).
    pub bytes: (usize, usize, usize),
}

/// **§4.1 memory claim**: buffer footprint per generator (expected within
/// ±1 %).
pub fn memory_table(arch: Arch) -> Vec<MemoryRow> {
    let coder = SimulinkCoderGen::new();
    let dfsynth = DfSynthGen::new();
    let hcg = HcgGen::new();
    benchmark_sessions()
        .iter()
        .map(|s| MemoryRow {
            model: short_name(s.model()),
            bytes: (
                s.generate(&coder, arch)
                    .expect("generates")
                    .memory_footprint(),
                s.generate(&dfsynth, arch)
                    .expect("generates")
                    .memory_footprint(),
                s.generate(&hcg, arch)
                    .expect("generates")
                    .memory_footprint(),
            ),
        })
        .collect()
}

/// One row of the §4.1 generation-time comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GenTimeRow {
    /// Benchmark name.
    pub model: String,
    /// Wall-clock per generator in microseconds: (simulink, dfsynth, hcg).
    pub micros: (u128, u128, u128),
}

/// **§4.1 generation-time claim**: all three tools complete generation in
/// comparable time. Runs sequentially (one pool worker) so per-generator
/// wall-clock is not skewed by sibling jobs on loaded machines.
pub fn gentime(arch: Arch) -> Vec<GenTimeRow> {
    gentime_threads(arch, 1)
}

/// [`gentime`] with an explicit worker count (`0` = available parallelism).
/// Each model's three generator timings stay within one job, so a row's
/// internal comparison is always apples-to-apples; more workers only
/// parallelise across models.
pub fn gentime_threads(arch: Arch, threads: usize) -> Vec<GenTimeRow> {
    let time_one = |g: &dyn CodeGenerator, m: &Model| {
        let start = Instant::now();
        g.generate(m, arch).expect("generates");
        start.elapsed().as_micros()
    };
    let models = benchmark_models();
    let jobs: Vec<_> = models
        .iter()
        .map(|m| {
            move || GenTimeRow {
                model: short_name(m),
                micros: (
                    time_one(&SimulinkCoderGen::new(), m),
                    time_one(&DfSynthGen::new(), m),
                    time_one(&HcgGen::new(), m),
                ),
            }
        })
        .collect();
    unwrap_jobs(hcg_exec::run_jobs(threads, jobs))
}

/// **§4.1 generation-time breakdown**: per-stage [`StageReport`]s for every
/// generator on every benchmark, driven through one session per model so
/// front-end time is excluded and stage timings are directly comparable.
///
/// Returns `(model short name, [coder, dfsynth, hcg] reports)` per model.
pub fn gentime_reports(arch: Arch) -> Vec<(String, Vec<StageReport>)> {
    let coder = SimulinkCoderGen::new();
    let dfsynth = DfSynthGen::new();
    let hcg = HcgGen::new();
    let gens: [&dyn CodeGenerator; 3] = [&coder, &dfsynth, &hcg];
    benchmark_sessions()
        .iter()
        .map(|s| {
            let reports = gens
                .iter()
                .map(|g| {
                    s.generate_with_report(*g, arch)
                        .unwrap_or_else(|e| panic!("{} on {}: {e}", g.name(), s.model().name))
                        .1
                })
                .collect();
            (short_name(s.model()), reports)
        })
        .collect()
}

/// One row of the §4.3 SIMD-threshold ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRow {
    /// Number of batch actors in the region.
    pub region_size: usize,
    /// Cycles with vectorisation forced on.
    pub simd_cycles: u64,
    /// Cycles with the region translated conventionally.
    pub scalar_cycles: u64,
}

/// **§4.3 ablation**: for chains of 1..=max batch actors, compare HCG with
/// the threshold off (always SIMD) vs effectively infinite (never SIMD) —
/// showing where vectorisation starts paying for its load/store overhead.
pub fn ablation_threshold(len: usize, max_chain: usize, platform: CostModel) -> Vec<ThresholdRow> {
    use hcg_model::{ActorKind, ModelBuilder, SignalType};
    let lib = CodeLibrary::new();
    (1..=max_chain)
        .map(|chain| {
            let ty = SignalType::vector(DataType::I32, len);
            let mut b = ModelBuilder::new(format!("chain{chain}"));
            let x = b.inport("x", ty);
            let y = b.inport("y", ty);
            let mut prev = {
                let a = b.add_actor("op0", ActorKind::Add);
                b.connect(x, 0, a, 0);
                b.connect(y, 0, a, 1);
                a
            };
            for i in 1..chain {
                let a = b.add_actor(format!("op{i}"), ActorKind::Add);
                b.connect(prev, 0, a, 0);
                b.connect(y, 0, a, 1);
                prev = a;
            }
            let o = b.outport("o");
            b.connect(prev, 0, o, 0);
            let m = b.build().expect("chain model is valid");

            let simd = HcgGen::new()
                .generate(&m, platform.arch)
                .expect("generates");
            let scalar_gen = HcgGen::with_options(HcgOptions {
                simd_threshold: usize::MAX,
                ..HcgOptions::default()
            });
            let scalar = scalar_gen.generate(&m, platform.arch).expect("generates");
            ThresholdRow {
                region_size: chain,
                simd_cycles: platform.cycles(&simd, &lib),
                scalar_cycles: platform.cycles(&scalar, &lib),
            }
        })
        .collect()
}

/// Result of the Algorithm-1 history ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryAblation {
    /// Microseconds for the first generation (cold: pre-calculation runs).
    pub cold_micros: u128,
    /// Microseconds for a repeat generation (warm: history hit).
    pub warm_micros: u128,
}

/// **Algorithm 1 ablation**: synthesis time with a cold vs warm selection
/// history, using the wall-clock meter so pre-calculation really executes
/// every candidate implementation.
pub fn ablation_history(n: usize) -> HistoryAblation {
    let m = library::fft_model(n);
    let gen = HcgGen::with_options(HcgOptions {
        meter: Meter::WallClock { reps: 3 },
        ..HcgOptions::default()
    });
    let start = Instant::now();
    gen.generate(&m, Arch::Neon128).expect("generates");
    let cold = start.elapsed().as_micros();
    let start = Instant::now();
    gen.generate(&m, Arch::Neon128).expect("generates");
    let warm = start.elapsed().as_micros();
    HistoryAblation {
        cold_micros: cold,
        warm_micros: warm,
    }
}

/// The greedy-order ablation: how many SIMD instructions Algorithm 2 emits
/// with largest-first matching vs how many nodes the graph has (fusion
/// count) for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionRow {
    /// Model name.
    pub model: String,
    /// Batch dataflow nodes in the model.
    pub batch_nodes: usize,
    /// SIMD compute instructions HCG emitted.
    pub vops: usize,
}

/// Count fusion on the benchmark set: fewer vops than batch nodes means
/// compound instructions were selected.
pub fn fusion_report(arch: Arch) -> Vec<FusionRow> {
    let hcg = HcgGen::new();
    benchmark_models()
        .iter()
        .chain(std::iter::once(&library::fig4_model()))
        .map(|m| {
            let types = m.infer_types().expect("valid");
            let dispatch = hcg_core::dispatch::classify_all(m, &types);
            let batch_nodes = hcg_core::dispatch::batch_actors(&dispatch).len();
            let p = hcg.generate(m, arch).expect("generates");
            FusionRow {
                model: short_name(m),
                batch_nodes,
                vops: p.stmt_stats().vops,
            }
        })
        .collect()
}

/// One row of the greedy-order ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyRow {
    /// Model name.
    pub model: String,
    /// (vops, cycles) with the paper's largest-first order.
    pub largest_first: (usize, u64),
    /// (vops, cycles) with smallest-first (no fusion).
    pub smallest_first: (usize, u64),
}

/// **Greedy-order ablation** (DESIGN.md decision 2): the paper sorts
/// candidate subgraphs by cost descending; inverting the order disables
/// compound-instruction selection, so instruction counts and cycles rise.
pub fn ablation_greedy_order(platform: CostModel) -> Vec<GreedyRow> {
    use hcg_core::MatchOrder;
    let lib = CodeLibrary::new();
    let largest = HcgGen::new();
    let smallest = HcgGen::with_options(HcgOptions {
        match_order: MatchOrder::SmallestFirst,
        ..HcgOptions::default()
    });
    let models = [
        library::fig4_model_sized(1024),
        library::lowpass_model(1024),
        library::highpass_model(1024),
        library::fir_model(1024, 4),
    ];
    models
        .iter()
        .map(|m| {
            let a = largest.generate(m, platform.arch).expect("generates");
            let b = smallest.generate(m, platform.arch).expect("generates");
            GreedyRow {
                model: short_name(m),
                largest_first: (a.stmt_stats().vops, platform.cycles(&a, &lib)),
                smallest_first: (b.stmt_stats().vops, platform.cycles(&b, &lib)),
            }
        })
        .collect()
}

/// Apply Algorithm 1 to every (actor, size) pair of the FFT family and
/// report the winner — the data behind the Figure 1 "no single winner"
/// observation.
pub fn fig1_winners(lengths: &[usize]) -> Vec<(usize, String)> {
    let lib = CodeLibrary::new();
    let mut tuner = Autotuner::new(Meter::OpCount);
    lengths
        .iter()
        .map(|&n| {
            let (k, _) = tuner
                .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![n]))
                .expect("fft always has implementations");
            (n, k.name.to_owned())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_hcg_wins_every_model() {
        for row in table2() {
            assert!(
                row.hcg_s < row.simulink_s && row.hcg_s < row.dfsynth_s,
                "{}: hcg={} simulink={} dfsynth={}",
                row.model,
                row.hcg_s,
                row.simulink_s,
                row.dfsynth_s
            );
        }
    }

    #[test]
    fn table2_improvements_have_paper_shape() {
        // Paper Table 2: improvements between ~40 % and ~76 %; intensive
        // models (FFT/DCT/Conv) improve more than batch models.
        let rows = table2();
        for row in &rows {
            let i = row.improvement_vs_simulink();
            assert!(
                (25.0..97.0).contains(&i),
                "{}: improvement {i:.1}% out of plausible band",
                row.model
            );
        }
        let avg = |names: &[&str]| {
            let sel: Vec<f64> = rows
                .iter()
                .filter(|r| names.contains(&r.model.as_str()))
                .map(|r| r.improvement_vs_simulink())
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let intensive = avg(&["FFT", "DCT", "Conv"]);
        let batch = avg(&["HighPass", "LowPass", "FIR"]);
        assert!(
            intensive > batch,
            "intensive ({intensive:.1}%) should beat batch ({batch:.1}%)"
        );
    }

    #[test]
    fn fig5_hcg_wins_everywhere() {
        for (platform, rows) in fig5() {
            for row in rows {
                assert!(
                    row.hcg_s < row.simulink_s && row.hcg_s < row.dfsynth_s,
                    "{} on {}/{}",
                    row.model,
                    platform.arch,
                    platform.compiler
                );
            }
        }
    }

    #[test]
    fn fig5b_scattered_simd_anomaly() {
        // Intel+GCC: the Coder baseline's scattered SIMD on batch models is
        // hit by the spill penalty — its advantage over DFSynth shrinks or
        // inverts relative to Intel+Clang.
        let all = fig5();
        let find = |arch: Arch, comp: Compiler| {
            all.iter()
                .find(|(p, _)| p.arch == arch && p.compiler == comp)
                .map(|(_, rows)| rows.clone())
                .expect("platform present")
        };
        let intel_gcc = find(Arch::Avx256, Compiler::GccLike);
        let intel_clang = find(Arch::Avx256, Compiler::ClangLike);
        for batch_model in ["HighPass", "LowPass", "FIR"] {
            let g = intel_gcc.iter().find(|r| r.model == batch_model).unwrap();
            let c = intel_clang.iter().find(|r| r.model == batch_model).unwrap();
            let gcc_ratio = g.simulink_s / g.hcg_s;
            let clang_ratio = c.simulink_s / c.hcg_s;
            assert!(
                gcc_ratio > clang_ratio,
                "{batch_model}: scattered-SIMD penalty must hurt the Coder baseline more under GCC \
                 (gcc ratio {gcc_ratio:.2} vs clang {clang_ratio:.2})"
            );
        }
    }

    #[test]
    fn fig1_no_single_winner() {
        let rows = fig1(&[4, 16, 64, 256, 1024, 1000], false);
        let mut winners = std::collections::BTreeSet::new();
        for row in &rows {
            let best = row
                .costs
                .iter()
                .filter_map(|(n, c)| c.map(|c| (n.clone(), c)))
                .min_by_key(|(_, c)| *c)
                .expect("some impl handles every length");
            winners.insert(best.0);
        }
        assert!(
            winners.len() >= 2,
            "Figure 1 requires different winners at different scales: {winners:?}"
        );
    }

    #[test]
    fn gentime_reports_share_front_end() {
        let t0 = hcg_model::stats::type_inference_runs();
        let s0 = hcg_model::stats::schedule_runs();
        let reports = gentime_reports(Arch::Neon128);
        assert_eq!(reports.len(), 6);
        for (model, rs) in &reports {
            assert_eq!(rs.len(), 3, "{model}: coder, dfsynth, hcg");
            let hcg = &rs[2];
            assert_eq!(hcg.generator, "hcg");
            let names: Vec<&str> = hcg.stages.iter().map(|s| s.name).collect();
            assert_eq!(
                names,
                [
                    "dispatch",
                    "region-formation",
                    "instruction-mapping",
                    "compose"
                ],
                "{model}"
            );
        }
        // Each model is type-checked once at construction (ModelBuilder::build)
        // and once in the session front end; scheduling runs only in the front
        // end. Nothing more across all 3×6 generator pipelines.
        let n = reports.len() as u64;
        assert_eq!(hcg_model::stats::type_inference_runs() - t0, 2 * n);
        assert_eq!(hcg_model::stats::schedule_runs() - s0, n);
    }

    #[test]
    fn memory_within_one_percent() {
        for row in memory_table(Arch::Neon128) {
            let (a, b, c) = row.bytes;
            let max = a.max(b).max(c) as f64;
            let min = a.min(b).min(c) as f64;
            assert!(
                (max - min) / max < 0.011,
                "{}: {:?} differs more than ±1 %",
                row.model,
                row.bytes
            );
        }
    }

    #[test]
    fn threshold_crossover_exists() {
        let rows = ablation_threshold(1024, 5, CostModel::new(Arch::Neon128, Compiler::GccLike));
        // Longer chains amortise loads/stores: the SIMD/scalar ratio must
        // improve monotonically-ish with chain length.
        let first_ratio = rows[0].simd_cycles as f64 / rows[0].scalar_cycles as f64;
        let last_ratio =
            rows.last().unwrap().simd_cycles as f64 / rows.last().unwrap().scalar_cycles as f64;
        assert!(last_ratio < first_ratio);
        // And SIMD must win clearly for the longest chain.
        assert!(rows.last().unwrap().simd_cycles * 2 < rows.last().unwrap().scalar_cycles);
    }

    #[test]
    fn fusion_happens_on_benchmarks() {
        let report = fusion_report(Arch::Neon128);
        let fig4 = report.iter().find(|r| r.model == "Fig4").unwrap();
        assert_eq!(fig4.batch_nodes, 5);
        assert_eq!(fig4.vops, 3);
        let lowpass = report.iter().find(|r| r.model == "LowPass").unwrap();
        assert!(lowpass.vops < lowpass.batch_nodes * (1024 / 4));
    }

    #[test]
    fn fig1_winner_matches_paper_example() {
        let winners = fig1_winners(&[1024]);
        assert_eq!(winners[0].1, "radix4");
    }

    #[test]
    fn greedy_order_ablation_shows_fusion_value() {
        let rows = ablation_greedy_order(CostModel::new(Arch::Neon128, Compiler::GccLike));
        // Largest-first must never use more instructions or cycles, and must
        // strictly win somewhere (vhadd/vmla exist on NEON).
        let mut strict = false;
        for r in &rows {
            assert!(r.largest_first.0 <= r.smallest_first.0, "{}", r.model);
            assert!(r.largest_first.1 <= r.smallest_first.1, "{}", r.model);
            strict |= r.largest_first.0 < r.smallest_first.0;
        }
        assert!(strict, "fusion must fire on at least one model: {rows:?}");
    }
}
