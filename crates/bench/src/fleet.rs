//! Parallel evaluation fleet: fan the `model × generator × architecture`
//! compile jobs of the paper's evaluation across an [`hcg_exec`]
//! work-stealing pool.
//!
//! One [`CompileSession`] per model is shared by reference across worker
//! threads (the session's caches are `OnceLock`s, so whichever worker
//! touches an artifact first computes it for everyone). Results come back
//! in submission order regardless of worker interleaving, and every job's
//! generated C source is captured so callers can assert byte-identity with
//! a sequential run.

use crate::experiments::short_name;
use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
use hcg_core::emit::to_c_source;
use hcg_core::{CodeGenerator, CompileSession, HcgGen};
use hcg_exec::PoolStats;
use hcg_isa::Arch;
use std::time::{Duration, Instant};

/// Generator short names the fleet drives, in evaluation order.
pub const FLEET_GENERATORS: [&str; 3] = ["simulink-coder", "dfsynth", "hcg"];

/// Architectures the fleet sweeps by default (the paper's two ISAs:
/// ARM NEON and Intel AVX2).
pub const FLEET_ARCHES: [Arch; 2] = [Arch::Neon128, Arch::Avx256];

/// Construct a generator by its [`CodeGenerator::name`]. Generators are
/// built inside each job (an [`HcgGen`] holds a `RefCell` autotuner, so it
/// is not `Sync`); this matches the sequential drivers, which also build
/// fresh generators per row.
///
/// # Panics
///
/// Panics on an unknown generator name.
pub fn generator_named(name: &str) -> Box<dyn CodeGenerator> {
    match name {
        "simulink-coder" => Box::new(SimulinkCoderGen::new()),
        "dfsynth" => Box::new(DfSynthGen::new()),
        "hcg" => Box::new(HcgGen::new()),
        other => panic!("unknown generator {other:?}"),
    }
}

/// One compile job of the fleet: a model (by session index), a generator
/// and a target architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetJob {
    /// Index into the session slice passed to [`run_fleet`].
    pub session: usize,
    /// Generator short name (see [`FLEET_GENERATORS`]).
    pub generator: &'static str,
    /// Target architecture.
    pub arch: Arch,
}

/// The cross product `sessions × FLEET_GENERATORS × arches`, in the
/// deterministic order the sequential drivers use (model-major, then
/// generator, then architecture).
pub fn fleet_jobs(n_sessions: usize, arches: &[Arch]) -> Vec<FleetJob> {
    let mut jobs = Vec::with_capacity(n_sessions * FLEET_GENERATORS.len() * arches.len());
    for session in 0..n_sessions {
        for generator in FLEET_GENERATORS {
            for &arch in arches {
                jobs.push(FleetJob {
                    session,
                    generator,
                    arch,
                });
            }
        }
    }
    jobs
}

/// One completed fleet job: the generated program's C source plus
/// book-keeping for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Model short name.
    pub model: String,
    /// Generator short name.
    pub generator: &'static str,
    /// Target architecture.
    pub arch: Arch,
    /// Rendered C source of the generated program — the byte-identity
    /// witness.
    pub source: String,
    /// Generation wall-clock for this one job.
    pub gen_time: Duration,
}

/// A fleet run's results: outcomes in job-submission order plus pool and
/// timing telemetry.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-job outcomes, in [`fleet_jobs`] order. `Err` carries the panic
    /// message of a job that died (panics are isolated per job).
    pub outcomes: Vec<Result<FleetOutcome, String>>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Work-stealing pool statistics (zero steals when sequential).
    pub steals: u64,
    /// End-to-end wall-clock for the whole run.
    pub elapsed: Duration,
}

impl FleetRun {
    /// Jobs completed without panicking.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }

    /// Throughput in jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        self.outcomes.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The generated sources, in job order.
    ///
    /// # Panics
    ///
    /// Panics if any job failed.
    pub fn sources(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .map(|o| match o {
                Ok(out) => out.source.as_str(),
                Err(e) => panic!("fleet job failed: {e}"),
            })
            .collect()
    }
}

fn run_one(sessions: &[CompileSession], job: &FleetJob) -> FleetOutcome {
    let session = &sessions[job.session];
    let _job_span = hcg_obs::span_with("fleet", || {
        format!(
            "{}/{}@{}",
            short_name(session.model()),
            job.generator,
            job.arch
        )
    });
    let gen = generator_named(job.generator);
    let start = Instant::now();
    let prog = session
        .generate(gen.as_ref(), job.arch)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", job.generator, session.model().name));
    FleetOutcome {
        model: short_name(session.model()),
        generator: job.generator,
        arch: job.arch,
        source: to_c_source(&prog),
        gen_time: start.elapsed(),
    }
}

/// Render a caught panic payload the way [`hcg_exec`] renders job panics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "fleet job panicked".to_owned()
    }
}

/// Run the fleet across `threads` workers (`0` = available parallelism).
/// Results return in submission order; a panicking job surfaces as an
/// `Err` slot without taking down its worker or the run.
///
/// Jobs are submitted to the pool in *batches* of several jobs each: one
/// fleet job is only a few hundred microseconds of compile work, so
/// per-job scheduling and steal traffic would otherwise eat the parallel
/// speedup. Panics stay isolated per job via a `catch_unwind` inside the
/// batch, and outcomes are flattened back into submission order, so the
/// result is indistinguishable from one-job-per-submission apart from the
/// wall-clock.
pub fn run_fleet(sessions: &[CompileSession], arches: &[Arch], threads: usize) -> FleetRun {
    let jobs = fleet_jobs(sessions.len(), arches);
    let start = Instant::now();
    let workers = hcg_exec::effective_threads(threads).max(1);
    // ~4 batches per worker balances amortisation against steal-ability.
    let chunk = jobs.len().div_ceil(workers * 4).max(1);
    let closures: Vec<_> = jobs
        .chunks(chunk)
        .map(|batch| {
            move || -> Vec<Result<FleetOutcome, String>> {
                batch
                    .iter()
                    .map(|job| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_one(sessions, job)
                        }))
                        .map_err(|p| panic_message(p.as_ref()))
                    })
                    .collect()
            }
        })
        .collect();
    let (results, stats): (_, PoolStats) = hcg_exec::run_jobs_with_stats(threads, closures);
    let mut outcomes = Vec::with_capacity(jobs.len());
    for (i, result) in results.into_iter().enumerate() {
        match result {
            Ok(batch) => outcomes.extend(batch),
            Err(p) => {
                // A batch death outside the per-job guard cannot normally
                // happen; keep one error slot per member so the outcome
                // count still matches the job count.
                let len = jobs.chunks(chunk).nth(i).map_or(0, <[FleetJob]>::len);
                let msg = p.to_string();
                outcomes.extend(std::iter::repeat_with(|| Err(msg.clone())).take(len));
            }
        }
    }
    FleetRun {
        outcomes,
        workers: stats.workers,
        steals: stats.steals,
        elapsed: start.elapsed(),
    }
}

/// The sequential baseline: the same jobs in the same order on the caller
/// thread, without any pool machinery — the reference a parallel run's
/// outputs and wall-clock are compared against.
pub fn run_fleet_sequential(sessions: &[CompileSession], arches: &[Arch]) -> FleetRun {
    let jobs = fleet_jobs(sessions.len(), arches);
    let start = Instant::now();
    let outcomes = jobs.iter().map(|job| Ok(run_one(sessions, job))).collect();
    FleetRun {
        outcomes,
        workers: 1,
        steals: 0,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::benchmark_sessions;

    #[test]
    fn job_order_is_model_major() {
        let jobs = fleet_jobs(2, &FLEET_ARCHES);
        assert_eq!(jobs.len(), 2 * 3 * 2);
        assert_eq!(jobs[0].session, 0);
        assert_eq!(jobs[0].generator, "simulink-coder");
        assert_eq!(jobs[0].arch, Arch::Neon128);
        assert_eq!(jobs[1].arch, Arch::Avx256);
        assert_eq!(jobs[2].generator, "dfsynth");
        assert_eq!(jobs[6].session, 1);
    }

    #[test]
    fn batched_parallel_matches_sequential() {
        let seq_sessions: Vec<CompileSession> = benchmark_sessions().into_iter().take(2).collect();
        let seq = run_fleet_sequential(&seq_sessions, &FLEET_ARCHES);
        let par_sessions: Vec<CompileSession> = benchmark_sessions().into_iter().take(2).collect();
        let par = run_fleet(&par_sessions, &FLEET_ARCHES, 3);
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        assert_eq!(seq.sources(), par.sources());
    }

    #[test]
    fn fleet_smoke_on_one_model() {
        let sessions: Vec<CompileSession> = benchmark_sessions().into_iter().take(1).collect();
        let run = run_fleet(&sessions, &[Arch::Neon128], 2);
        assert_eq!(run.outcomes.len(), 3);
        assert_eq!(run.ok_count(), 3);
        for (job, out) in fleet_jobs(1, &[Arch::Neon128]).iter().zip(&run.outcomes) {
            let out = out.as_ref().unwrap();
            assert_eq!(out.generator, job.generator);
            assert!(!out.source.is_empty());
        }
    }
}
