//! The `repro -- profile` experiment: drive the evaluation matrix through
//! the VM execution profiler and render per-actor / per-region cycle
//! breakdowns.
//!
//! Each `model × generator × architecture` cell compiles through a shared
//! [`CompileSession`] (front-end artifacts computed once per model) and is
//! priced with the GCC-like cost model; [`hcg_vm::profile`] then attributes
//! every top-level statement's cycles to the source actor and mapped SIMD
//! region recorded at emit time. Attribution is conservative by
//! construction — per-actor sums equal the VM's total charged cycles — and
//! the `profile_conservation` integration test pins that for every example
//! model.

use crate::experiments::{benchmark_sessions, short_name};
use crate::fleet::{generator_named, FLEET_ARCHES, FLEET_GENERATORS};
use hcg_kernels::CodeLibrary;
use hcg_vm::{profile, Compiler, CostModel, CycleProfile};

/// One profiled cell of the `model × generator × arch` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Benchmark short name (the row label).
    pub model: String,
    /// The per-actor / per-region cycle breakdown.
    pub profile: CycleProfile,
}

/// Profile the full evaluation matrix (paper benchmarks × the three
/// generators × the two evaluation ISAs, GCC-like compiler profile).
///
/// `filter`, when given, keeps only the model whose short name or full
/// name matches case-insensitively — the `--model` flag.
pub fn profile_matrix(filter: Option<&str>) -> Vec<ProfileEntry> {
    let lib = CodeLibrary::new();
    let mut out = Vec::new();
    for session in &benchmark_sessions() {
        let name = short_name(session.model());
        if let Some(f) = filter {
            let matches =
                name.eq_ignore_ascii_case(f) || session.model().name.eq_ignore_ascii_case(f);
            if !matches {
                continue;
            }
        }
        for generator in FLEET_GENERATORS {
            for arch in FLEET_ARCHES {
                let gen = generator_named(generator);
                let prog = session
                    .generate(gen.as_ref(), arch)
                    .unwrap_or_else(|e| panic!("{generator} on {name}: {e}"));
                let cm = CostModel::new(arch, Compiler::GccLike);
                out.push(ProfileEntry {
                    model: name.clone(),
                    profile: profile(&prog, &lib, &cm),
                });
            }
        }
    }
    out
}

/// Deterministic JSON over a profiled matrix: one object per cell, in
/// matrix order, each the profile's own stable rendering.
pub fn profile_json(entries: &[ProfileEntry]) -> String {
    let cells: Vec<String> = entries.iter().map(|e| e.profile.to_json()).collect();
    format!(
        "{{\n  \"experiment\": \"profile\",\n  \"compiler\": \"gcc\",\n  \"entries\": [{}]\n}}\n",
        cells.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_selects_one_model() {
        let all = profile_matrix(Some("fir"));
        assert!(!all.is_empty());
        assert!(all.iter().all(|e| e.model == "FIR"));
        assert_eq!(
            all.len(),
            FLEET_GENERATORS.len() * FLEET_ARCHES.len(),
            "one cell per generator × arch"
        );
        assert!(profile_matrix(Some("no-such-model")).is_empty());
    }

    #[test]
    fn intensive_kernels_carry_region_provenance() {
        // DCT_1024 is all-intensive under hcg (one kernel call, no batch
        // regions); the kernel call must still be attributed to a region
        // instead of silently profiling as `"regions": []`.
        let entries = profile_matrix(Some("DCT"));
        let hcg: Vec<_> = entries
            .iter()
            .filter(|e| e.profile.generator == "hcg")
            .collect();
        assert!(!hcg.is_empty());
        for e in hcg {
            assert!(
                !e.profile.regions.is_empty(),
                "hcg DCT profile lost its intensive-kernel region provenance"
            );
            assert!(e.profile.regions.iter().any(|r| r.actor == "dct"));
        }
        // Scalar baselines have no SIMD regions — stays empty by design.
        for e in entries
            .iter()
            .filter(|e| e.profile.generator == "simulink-coder")
        {
            assert!(e.profile.regions.is_empty());
        }
    }

    #[test]
    fn entries_conserve_cycles_and_json_validates() {
        let entries = profile_matrix(Some("FIR"));
        for e in &entries {
            assert_eq!(e.profile.attributed_cycles(), e.profile.total_cycles);
            assert!(e.profile.total_cycles > 0);
        }
        let json = profile_json(&entries);
        assert!(hcg_obs::json::validate(&json).is_ok(), "{json}");
        assert_eq!(json, profile_json(&profile_matrix(Some("FIR"))));
    }
}
