//! The compile-service load generator (`repro -- serve-bench`) and CI
//! smoke (`repro -- serve-smoke`).
//!
//! `serve-bench` spins an [`hcg_serve`] daemon in-process on an ephemeral
//! port, synthesizes an M-model corpus with the hcg-fuzz generator,
//! replays a Zipf-skewed request mix from C concurrent client threads
//! over real TCP connections, and checks every response byte-identical to
//! a direct (daemon-free) [`CompileSession`](hcg_core::CompileSession)
//! compile — the service must behave as a transparent cache.

use hcg_fuzz::{generate_model, GenConfig};
use hcg_model::parser::model_to_xml;
use hcg_serve::{client, spawn, CompileOptions, ServeConfig, ServeHandle};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

/// The option mixes replayed against the daemon (query string, plus the
/// equivalent parsed options for the byte-identity oracle).
const OPTION_MIX: [&str; 2] = ["generator=hcg&arch=neon128", "generator=hcg&arch=avx256"];

/// Zipf skew exponent for the model popularity distribution.
const ZIPF_S: f64 = 1.1;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Total requests replayed across all clients.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Synthesized models in the corpus.
    pub corpus_size: usize,
    /// Base seed for corpus synthesis and request sampling.
    pub seed: u64,
    /// Daemon worker jobs (0 = all cores).
    pub workers: usize,
    /// Record latency/size histograms in the daemon (the default
    /// production posture; `obs-bench` turns it off for its baseline).
    pub record_histograms: bool,
    /// Append one JSON line per request to this path.
    pub access_log: Option<std::path::PathBuf>,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            requests: 5000,
            clients: 8,
            corpus_size: 1000,
            seed: 0,
            workers: 0,
            record_histograms: true,
            access_log: None,
        }
    }
}

/// One run's results.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The configuration that produced this report.
    pub config: ServeBenchConfig,
    /// Distinct `(model, options)` keys the replay touched.
    pub distinct_keys: usize,
    /// Artifact-cache hits observed by the daemon.
    pub hits: u64,
    /// Artifact-cache misses.
    pub misses: u64,
    /// Requests that joined an in-flight compile.
    pub joins: u64,
    /// Compiles the daemon actually executed.
    pub compiles: u64,
    /// Artifacts evicted during the run.
    pub evicted: u64,
    /// Front-end sessions reused across option mixes.
    pub session_hits: u64,
    /// Wall-clock seconds for the whole replay.
    pub elapsed_s: f64,
    /// End-to-end request latency percentiles, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Whether every response body matched the direct compile.
    pub identical: bool,
    /// Responses that were compile failures (422); counted, not fatal —
    /// a fuzz corpus may legitimately contain uncompilable models.
    pub failures: usize,
}

impl ServeBenchReport {
    /// Requests served per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        self.config.requests as f64 / self.elapsed_s.max(1e-9)
    }

    /// Hit rate over the artifact cache (hits / requests).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.config.requests as f64).max(1.0)
    }
}

/// splitmix64: the per-client deterministic request sampler.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Cumulative Zipf(`ZIPF_S`) distribution over `n` ranks.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(ZIPF_S)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

fn sample_rank(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// The expected body for `xml` under `query`, compiled without the daemon.
fn direct_compile(xml: &str, query: &str) -> Result<String, String> {
    let options = CompileOptions::from_query(|k| {
        query.split('&').find_map(|pair| {
            let (name, value) = pair.split_once('=')?;
            (name == k).then(|| value.to_owned())
        })
    })
    .expect("bench option mix is valid");
    let model = hcg_model::parser::model_from_xml(xml).map_err(|e| e.to_string())?;
    let session = hcg_core::CompileSession::new(model);
    session
        .generate(options.build_generator().as_ref(), options.arch)
        .map(|p| hcg_core::emit::to_c_source(&p))
        .map_err(|e| format!("compile failed: {e}"))
}

/// Run the load generator against a fresh in-process daemon.
///
/// # Panics
///
/// Panics when the daemon cannot bind or a client transport fails — both
/// mean the bench itself is broken, not the system under test.
pub fn run_serve_bench(config: &ServeBenchConfig) -> ServeBenchReport {
    let corpus_size = config.corpus_size.max(1);
    let clients = config.clients.max(1);
    let gen_cfg = GenConfig::default();
    let corpus: Vec<String> = (0..corpus_size)
        .map(|i| {
            model_to_xml(&generate_model(
                config.seed.wrapping_add(i as u64),
                &gen_cfg,
            ))
        })
        .collect();
    let cdf = zipf_cdf(corpus_size);

    let handle: ServeHandle = spawn(ServeConfig {
        workers: config.workers,
        record_histograms: config.record_histograms,
        access_log: config.access_log.clone(),
        ..ServeConfig::default()
    })
    .expect("serve-bench daemon binds an ephemeral port");
    let addr = handle.addr();

    // Split the request budget across clients (first client absorbs the
    // remainder so totals always add up).
    let per_client = config.requests / clients;
    let remainder = config.requests % clients;

    struct Observed {
        model: u32,
        opt: u8,
        status: u16,
        body: String,
        latency_us: u64,
    }

    let started = Instant::now();
    let observations: Vec<Observed> = std::thread::scope(|scope| {
        let corpus = &corpus;
        let cdf = &cdf;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let quota = per_client + usize::from(c == 0) * remainder;
                scope.spawn(move || {
                    let mut rng =
                        config.seed ^ (0xc11e_0000 + c as u64).wrapping_mul(0x1234_5678_9abc_def1);
                    let mut out = Vec::with_capacity(quota);
                    for _ in 0..quota {
                        let model = sample_rank(cdf, unit_f64(splitmix64(&mut rng)));
                        let opt = (splitmix64(&mut rng) & 1) as usize;
                        let t0 = Instant::now();
                        let resp = client::compile(addr, OPTION_MIX[opt], corpus[model].as_bytes())
                            .expect("client transport");
                        out.push(Observed {
                            model: model as u32,
                            opt: opt as u8,
                            status: resp.status,
                            body: resp.text(),
                            latency_us: t0.elapsed().as_micros() as u64,
                        });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    // Byte-identity oracle: one direct compile per distinct key, compared
    // against every response for that key.
    let mut expected: std::collections::HashMap<(u32, u8), Result<String, String>> =
        std::collections::HashMap::new();
    let mut identical = true;
    let mut failures = 0usize;
    for obs in &observations {
        let want = expected.entry((obs.model, obs.opt)).or_insert_with(|| {
            direct_compile(&corpus[obs.model as usize], OPTION_MIX[obs.opt as usize])
        });
        match want {
            Ok(body) => {
                identical &= obs.status == 200 && obs.body == *body;
            }
            Err(error) => {
                failures += 1;
                identical &= obs.status == 422 && obs.body == *error;
            }
        }
    }
    let distinct_keys = expected.len();

    let mut latencies: Vec<u64> = observations.iter().map(|o| o.latency_us).collect();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };

    let counters = handle.counters();
    let report = ServeBenchReport {
        config: ServeBenchConfig {
            requests: observations.len(),
            clients,
            corpus_size,
            ..config.clone()
        },
        distinct_keys,
        hits: counters.hits.load(Relaxed),
        misses: counters.misses.load(Relaxed),
        joins: counters.joins.load(Relaxed),
        compiles: counters.compiles.load(Relaxed),
        evicted: counters.evicted.load(Relaxed),
        session_hits: counters.session_hits.load(Relaxed),
        elapsed_s,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        identical,
        failures,
    };
    handle.shutdown();
    report
}

/// Render the report for the transcript.
pub fn render_serve_bench(r: &ServeBenchReport) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "{} requests from {} clients over a {}-model corpus (Zipf s={ZIPF_S}, seed {})",
        r.config.requests, r.config.clients, r.config.corpus_size, r.config.seed
    ));
    line(format!(
        "distinct keys: {}  compiles: {}  hits: {}  misses: {}  joins: {}  evicted: {}",
        r.distinct_keys, r.compiles, r.hits, r.misses, r.joins, r.evicted
    ));
    line(format!(
        "hit rate: {:.1}%  front-end session hits: {}",
        r.hit_rate() * 100.0,
        r.session_hits
    ));
    line(format!(
        "throughput: {:.0} requests/s  latency p50: {} us  p99: {} us  ({:.2} s total)",
        r.requests_per_sec(),
        r.p50_us,
        r.p99_us,
        r.elapsed_s
    ));
    line(format!(
        "responses byte-identical to direct compile: {} ({} compile-failure responses replayed)",
        r.identical, r.failures
    ));
    out
}

/// The report as the committed `BENCH_serve.json` schema.
pub fn serve_bench_json(r: &ServeBenchReport) -> String {
    format!(
        "{{\n  \"experiment\": \"serve\",\n  \"requests\": {},\n  \"clients\": {},\n  \
         \"corpus_size\": {},\n  \"seed\": {},\n  \"zipf_s\": {ZIPF_S},\n  \
         \"distinct_keys\": {},\n  \"compiles\": {},\n  \"hits\": {},\n  \"misses\": {},\n  \
         \"joins\": {},\n  \"evicted\": {},\n  \"session_hits\": {},\n  \
         \"hit_rate\": {:.4},\n  \"requests_per_sec\": {:.1},\n  \"p50_us\": {},\n  \
         \"p99_us\": {},\n  \"elapsed_s\": {:.3},\n  \"identical_responses\": {},\n  \
         \"failure_responses\": {}\n}}\n",
        r.config.requests,
        r.config.clients,
        r.config.corpus_size,
        r.config.seed,
        r.distinct_keys,
        r.compiles,
        r.hits,
        r.misses,
        r.joins,
        r.evicted,
        r.session_hits,
        r.hit_rate(),
        r.requests_per_sec(),
        r.p50_us,
        r.p99_us,
        r.elapsed_s,
        r.identical,
        r.failures,
    )
}

/// The CI smoke: a daemon on an ephemeral port, two bundled models each
/// POSTed twice; the second round must be all cache hits with identical
/// bodies, and shutdown must be clean. Returns a transcript.
///
/// # Panics
///
/// Panics on any smoke violation (that is the point — `check.sh` runs it).
pub fn run_serve_smoke() -> String {
    let mut out = String::new();
    let handle = spawn(ServeConfig::default()).expect("smoke daemon binds");
    let addr = handle.addr();
    out.push_str(&format!("daemon on {addr}\n"));
    let models = [
        (
            "fig2",
            model_to_xml(&hcg_model::library::fig2_model()),
            "generator=hcg&arch=neon128",
        ),
        (
            "fig4",
            model_to_xml(&hcg_model::library::fig4_model()),
            "generator=hcg&arch=avx256",
        ),
    ];
    for (name, xml, query) in &models {
        let first = client::compile(addr, query, xml.as_bytes()).expect("smoke POST");
        assert_eq!(first.status, 200, "{name}: {}", first.text());
        assert_eq!(first.header("x-cache"), Some("miss"), "{name} first POST");
        let second = client::compile(addr, query, xml.as_bytes()).expect("smoke POST");
        assert_eq!(second.status, 200);
        assert_eq!(second.header("x-cache"), Some("hit"), "{name} second POST");
        assert_eq!(first.body, second.body, "{name} bodies match across hits");
        out.push_str(&format!(
            "{name}: miss then hit, {} byte body identical\n",
            first.body.len()
        ));
    }
    let metrics = client::request(addr, "GET", "/metrics", b"").expect("smoke metrics");
    hcg_obs::json::validate(&metrics.text()).expect("metrics JSON validates");
    assert_eq!(
        metrics.header("cache-control"),
        Some("no-store"),
        "scrapes must not be cached"
    );
    // The Prometheus surface, end to end: scrape the text format over TCP
    // and run it through the strict parser (no curl, no external deps).
    let prom = client::request(addr, "GET", "/metrics?format=prometheus", b"")
        .expect("smoke prometheus scrape");
    assert_eq!(prom.status, 200);
    let doc = hcg_obs::prometheus::parse(&prom.text()).expect("prometheus exposition parses");
    assert!(
        doc.value("serve_requests").unwrap_or(0.0) >= 4.0,
        "scrape reflects the smoke's requests"
    );
    assert_eq!(
        doc.types
            .get("serve_request_latency_us")
            .map(String::as_str),
        Some("histogram"),
        "latency histogram exposed to Prometheus"
    );
    let counters = handle.counters();
    assert_eq!(counters.compiles.load(Relaxed), 2, "one compile per model");
    assert_eq!(counters.hits.load(Relaxed), 2, "one hit per model");
    handle.shutdown();
    out.push_str(
        "metrics valid JSON; prometheus scrape parses; 2 compiles, 2 hits; clean shutdown\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let cdf = zipf_cdf(100);
        assert_eq!(cdf.len(), 100);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf[99] - 1.0).abs() < 1e-9);
        // Rank 1 dominates under s > 1.
        assert!(cdf[0] > 0.1);
        assert_eq!(sample_rank(&cdf, 0.0), 0);
        assert_eq!(sample_rank(&cdf, 0.9999999), 99);
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let u = unit_f64(xs[0]);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn tiny_bench_run_is_identical_and_counts_add_up() {
        let report = run_serve_bench(&ServeBenchConfig {
            requests: 40,
            clients: 4,
            corpus_size: 5,
            seed: 7,
            workers: 2,
            ..ServeBenchConfig::default()
        });
        assert!(
            report.identical,
            "service responses must match direct compiles"
        );
        assert_eq!(report.config.requests, 40);
        assert_eq!(
            report.hits + report.misses,
            40,
            "every request is a hit or a miss"
        );
        // 5 models x 2 option mixes bounds the key space.
        assert!(report.distinct_keys <= 10);
        assert!(report.compiles <= report.distinct_keys as u64);
        assert!(
            report.hit_rate() > 0.5,
            "40 requests over ≤10 keys mostly hit"
        );
        let json = serve_bench_json(&report);
        hcg_obs::json::validate(&json).expect("serve bench JSON validates");
        assert!(render_serve_bench(&report).contains("hit rate"));
    }

    #[test]
    fn smoke_passes() {
        let transcript = run_serve_smoke();
        assert!(transcript.contains("miss then hit"));
        assert!(transcript.contains("clean shutdown"));
    }
}
