//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Everything printed to the console is also written to a transcript file,
//! `target/repro_output.txt` by default (`--out PATH` overrides) — the
//! source tree stays clean.
//!
//! ```text
//! cargo run -p hcg-bench --bin repro --release -- all
//! cargo run -p hcg-bench --bin repro --release -- table2
//! cargo run -p hcg-bench --bin repro --release -- fig1 [--wall-clock]
//! cargo run -p hcg-bench --bin repro --release -- fig5
//! cargo run -p hcg-bench --bin repro --release -- fig2 | fig4 | table1
//! cargo run -p hcg-bench --bin repro --release -- memory | gentime | consistency
//! cargo run -p hcg-bench --bin repro --release -- ablation-threshold | ablation-history
//! cargo run -p hcg-bench --bin repro --release -- fleet [--threads N] [--json PATH]
//! cargo run -p hcg-bench --bin repro --release -- incremental [--seed S] [--edits N] [--json PATH]
//! cargo run -p hcg-bench --bin repro --release -- fuzz [--seed S] [--iters N] [--threads T] [--beam W] [--json PATH]
//! cargo run -p hcg-bench --bin repro --release -- search [--beam W] [--calibrate] [--seed S] [--iters N] [--json PATH]
//! cargo run -p hcg-bench --bin repro --release -- profile [--model M] [--json PATH] [--trace PATH]
//! cargo run -p hcg-bench --bin repro --release -- verify [--json PATH]
//! cargo run -p hcg-bench --bin repro --release -- lint
//! cargo run -p hcg-bench --bin repro --release -- serve [--port P] [--threads N] [--access-log PATH]
//! cargo run -p hcg-bench --bin repro --release -- serve-smoke
//! cargo run -p hcg-bench --bin repro --release -- serve-bench [--requests N] [--clients C] [--corpus-size M] [--seed S] [--threads N] [--json PATH]
//! cargo run -p hcg-bench --bin repro --release -- obs-bench [--requests N] [--clients C] [--corpus-size M] [--seed S] [--threads N] [--access-log PATH] [--json PATH]
//! ```

use hcg_baselines::SimulinkCoderGen;
use hcg_bench::*;
use hcg_core::{emit::to_c_source, CodeGenerator, HcgGen};
use hcg_isa::Arch;
use hcg_model::{library, ActorKind, KindClass};
use hcg_vm::{Compiler, CostModel};
use std::sync::Mutex;

/// Transcript of everything printed, flushed to disk at exit.
static CAPTURE: Mutex<String> = Mutex::new(String::new());

/// Like `print!`, but also appends to the transcript buffer.
macro_rules! out {
    ($($arg:tt)*) => {{
        let s = format!($($arg)*);
        print!("{s}");
        CAPTURE.lock().unwrap().push_str(&s);
    }};
}

/// Like `println!`, but also appends to the transcript buffer.
macro_rules! outln {
    () => { outln!("") };
    ($($arg:tt)*) => {{
        let s = format!($($arg)*);
        println!("{s}");
        let mut c = CAPTURE.lock().unwrap();
        c.push_str(&s);
        c.push('\n');
    }};
}

fn main() {
    let args = match cli::parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match args.cmd.as_deref().unwrap_or("all") {
        "all" => {
            table1_cmd();
            fig1_cmd(args.wall_clock);
            fig2_cmd();
            fig4_cmd();
            table2_cmd();
            fig5_cmd();
            memory_cmd();
            gentime_cmd(args.threads);
            consistency_cmd();
            ablation_threshold_cmd();
            ablation_history_cmd();
            ablation_greedy_cmd();
            fusion_cmd();
            fleet_cmd(args.threads, args.json.as_deref());
            incremental_cmd(&args);
            search_cmd(&args);
            fuzz_cmd(&args);
            profile_cmd(&args);
            lint_cmd();
            verify_cmd(&args);
        }
        "table1" => table1_cmd(),
        "fig1" => fig1_cmd(args.wall_clock),
        "fig2" => fig2_cmd(),
        "fig4" => fig4_cmd(),
        "table2" => table2_cmd(),
        "fig5" => fig5_cmd(),
        "memory" => memory_cmd(),
        "gentime" => gentime_cmd(args.threads),
        "consistency" => consistency_cmd(),
        "ablation-threshold" => ablation_threshold_cmd(),
        "ablation-history" => ablation_history_cmd(),
        "ablation-greedy" => ablation_greedy_cmd(),
        "fusion" => fusion_cmd(),
        "fleet" => fleet_cmd(args.threads, args.json.as_deref()),
        "incremental" => incremental_cmd(&args),
        "search" => search_cmd(&args),
        "fuzz" => fuzz_cmd(&args),
        "profile" => profile_cmd(&args),
        "lint" => lint_cmd(),
        "verify" => verify_cmd(&args),
        "serve" => serve_cmd(&args),
        "serve-smoke" => serve_smoke_cmd(),
        "serve-bench" => serve_bench_cmd(&args),
        "obs-bench" => obs_bench_cmd(&args),
        other => {
            eprintln!("unknown experiment {other:?}; see module docs for the list");
            std::process::exit(2);
        }
    }
    write_transcript(&args.out_path);
}

/// Write the captured console output under `target/` (or `--out PATH`).
fn write_transcript(path: &std::path::Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, CAPTURE.lock().unwrap().as_bytes()) {
        Ok(()) => eprintln!("\n(transcript written to {})", path.display()),
        Err(e) => eprintln!("\nwarning: could not write {}: {e}", path.display()),
    }
}

fn heading(title: &str) {
    outln!("\n================================================================");
    outln!("{title}");
    outln!("================================================================");
}

fn table1_cmd() {
    heading("Table 1 — supported intensive and batch computing actors");
    outln!("(a) intensive computing actors:");
    for k in ActorKind::ALL {
        if k.class() == KindClass::Intensive {
            outln!("    {k}");
        }
    }
    outln!("(b) batch computing actors:");
    for k in ActorKind::ALL {
        if k.class() == KindClass::Batch {
            outln!("    {k}");
        }
    }
}

fn fig1_cmd(wall_clock: bool) {
    let unit = if wall_clock { "ns" } else { "ops" };
    heading(&format!(
        "Figure 1 — FFT implementation cost vs input length ({unit}, lower is better)"
    ));
    let lengths = [
        4, 8, 16, 32, 64, 100, 128, 256, 500, 512, 1000, 1024, 2048, 4096,
    ];
    let rows = fig1(&lengths, wall_clock);
    let impls: Vec<String> = rows[0].costs.iter().map(|(n, _)| n.clone()).collect();
    out!("{:>6}", "n");
    for name in &impls {
        out!("{name:>12}");
    }
    outln!("{:>12}", "winner");
    for row in &rows {
        out!("{:>6}", row.n);
        let mut best: Option<(&str, u64)> = None;
        for (name, cost) in &row.costs {
            match cost {
                Some(c) => {
                    out!("{c:>12}");
                    if best.is_none_or(|(_, b)| *c < b) {
                        best = Some((name, *c));
                    }
                }
                None => out!("{:>12}", "-"),
            }
        }
        outln!("{:>12}", best.map(|(n, _)| n).unwrap_or("-"));
    }
    outln!("\nAlgorithm-1 winners (OpCount meter):");
    for (n, winner) in fig1_winners(&lengths) {
        outln!("    n={n:<5} -> {winner}");
    }
}

fn fig2_cmd() {
    heading("Figure 2 — sample batch model: Coder's unrolled code vs HCG's SIMD");
    let m = library::fig2_model();
    let coder = SimulinkCoderGen::new()
        .generate(&m, Arch::Neon128)
        .expect("generates");
    outln!("--- Simulink-Coder-like (ARM: scalar, expression-folded) ---");
    outln!("{}", to_c_source(&coder));
    let hcg = HcgGen::new()
        .generate(&m, Arch::Neon128)
        .expect("generates");
    outln!("--- HCG (fused SIMD) ---");
    outln!("{}", to_c_source(&hcg));
}

fn fig4_cmd() {
    heading("Figure 4 / Listing 1 — dataflow graph mapping on the sample model");
    let m = library::fig4_model();
    // Narrate the mapping like the paper's Figure 4 walk-through.
    let ctx = hcg_core::GenContext::new(&m, Arch::Neon128, "explain").expect("valid model");
    let dispatch = hcg_core::dispatch::classify_all(ctx.model, &ctx.types);
    let set = hcg_isa::sets::builtin(Arch::Neon128);
    let regions = hcg_core::batch::form_regions(&ctx, &dispatch, &set);
    for trace in hcg_core::explain_region(&ctx, &regions[0], &set).expect("maps") {
        outln!(
            "  from {:<5} candidates: {:?}",
            trace.start,
            trace.candidates
        );
        outln!(
            "        matched {:<28} -> {}",
            trace.chosen,
            trace.instruction
        );
    }
    outln!();
    let hcg = HcgGen::new()
        .generate(&m, Arch::Neon128)
        .expect("generates");
    outln!("{}", to_c_source(&hcg));
}

fn print_exec_rows(rows: &[ExecRow]) {
    outln!(
        "{:>10} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "Model",
        "Simulink(s)",
        "DFSynth(s)",
        "HCG(s)",
        "vs Simulink",
        "vs DFSynth"
    );
    for r in rows {
        outln!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3} {:>13.1}% {:>13.1}%",
            r.model,
            r.simulink_s,
            r.dfsynth_s,
            r.hcg_s,
            r.improvement_vs_simulink(),
            r.improvement_vs_dfsynth()
        );
    }
    let range = |f: fn(&ExecRow) -> f64| {
        let lo = rows.iter().map(f).fold(f64::MAX, f64::min);
        let hi = rows.iter().map(f).fold(f64::MIN, f64::max);
        (lo, hi)
    };
    let (ls, hs) = range(ExecRow::improvement_vs_simulink);
    let (ld, hd) = range(ExecRow::improvement_vs_dfsynth);
    outln!("  improvement ranges: {ls:.1}%-{hs:.1}% vs Simulink, {ld:.1}%-{hd:.1}% vs DFSynth");
}

fn table2_cmd() {
    heading(
        "Table 2 — execution time on ARM (Cortex-A72-like) with GCC-like compiler, 10 000 iterations",
    );
    print_exec_rows(&table2());
    outln!("  (paper reports 41.3%-71.9% vs Simulink Coder, 41.2%-75.4% vs DFSynth)");
}

fn fig5_cmd() {
    heading("Figure 5 — six benchmarks on ARM/Intel x GCC/Clang");
    for (platform, rows) in fig5() {
        outln!(
            "\n  ({}) {} + {} [{} iterations]",
            match (platform.arch, platform.compiler) {
                (Arch::Neon128, Compiler::GccLike) => "a",
                (Arch::Avx256, Compiler::GccLike) => "b",
                (Arch::Neon128, Compiler::ClangLike) => "c",
                _ => "d",
            },
            platform.arch,
            platform.compiler,
            iterations_for(platform.arch)
        );
        print_exec_rows(&rows);
    }
}

fn memory_cmd() {
    heading("Section 4.1 — memory usage of generated code (paper: within 1%)");
    outln!(
        "{:>10} {:>12} {:>12} {:>12} {:>8}",
        "Model",
        "Simulink(B)",
        "DFSynth(B)",
        "HCG(B)",
        "spread"
    );
    for r in memory_table(Arch::Neon128) {
        let (a, b, c) = r.bytes;
        let max = a.max(b).max(c) as f64;
        let min = a.min(b).min(c) as f64;
        outln!(
            "{:>10} {:>12} {:>12} {:>12} {:>7.2}%",
            r.model,
            a,
            b,
            c,
            (max - min) / max * 100.0
        );
    }
}

fn gentime_cmd(threads: usize) {
    heading("Section 4.1 — code generation time (paper: 1-2 s for all tools)");
    outln!(
        "{:>10} {:>14} {:>14} {:>14}",
        "Model",
        "Simulink(us)",
        "DFSynth(us)",
        "HCG(us)"
    );
    // `--threads 0` (the default) keeps the historical sequential timing.
    for r in gentime_threads(Arch::Neon128, threads.max(1)) {
        outln!(
            "{:>10} {:>14} {:>14} {:>14}",
            r.model,
            r.micros.0,
            r.micros.1,
            r.micros.2
        );
    }

    outln!("\nPer-stage breakdown (one CompileSession per model, NEON):");
    let t0 = hcg_model::stats::type_inference_runs();
    let s0 = hcg_model::stats::schedule_runs();
    let reports = gentime_reports(Arch::Neon128);
    let pipelines: usize = reports.iter().map(|(_, rs)| rs.len()).sum();
    for (model, reports) in &reports {
        outln!("\n  -- {model} --");
        for report in reports {
            for line in report.render().lines() {
                outln!("  {line}");
            }
        }
    }
    outln!(
        "\n  front-end reuse: {} scheduling run(s) served {} generator pipelines \
         ({} type-inference runs, incl. one per model at construction)",
        hcg_model::stats::schedule_runs() - s0,
        pipelines,
        hcg_model::stats::type_inference_runs() - t0
    );
}

fn consistency_cmd() {
    heading("Section 4.1 — computation results consistent across generators");
    for m in benchmark_models() {
        for arch in Arch::ALL {
            let c = check_consistency(&m, arch, 3, 99);
            outln!(
                "  {:>10} on {:>8}: max relative diff {:.3e}",
                c.model,
                format!("{}", c.arch),
                c.max_diff
            );
        }
    }
}

fn ablation_threshold_cmd() {
    heading("Section 4.3 ablation — SIMD threshold: chains of N batch Adds (i32*1024), ARM+GCC");
    let rows = ablation_threshold(1024, 6, CostModel::new(Arch::Neon128, Compiler::GccLike));
    outln!(
        "{:>8} {:>14} {:>14} {:>10}",
        "actors",
        "SIMD cycles",
        "scalar cycles",
        "speedup"
    );
    for r in rows {
        outln!(
            "{:>8} {:>14} {:>14} {:>9.2}x",
            r.region_size,
            r.simd_cycles,
            r.scalar_cycles,
            r.scalar_cycles as f64 / r.simd_cycles as f64
        );
    }
}

fn ablation_history_cmd() {
    heading("Algorithm 1 ablation — selection-history cache (wall-clock meter)");
    let a = ablation_history(1024);
    outln!(
        "  cold synthesis (pre-calculation runs): {:>8} us",
        a.cold_micros
    );
    outln!(
        "  warm synthesis (history hit):          {:>8} us",
        a.warm_micros
    );
    outln!(
        "  speedup: {:.1}x",
        a.cold_micros as f64 / a.warm_micros.max(1) as f64
    );
}

fn ablation_greedy_cmd() {
    heading("Greedy-order ablation — largest-first vs smallest-first subgraph matching (ARM+GCC)");
    outln!(
        "{:>10} {:>22} {:>22}",
        "Model",
        "largest (vops/cyc)",
        "smallest (vops/cyc)"
    );
    for r in ablation_greedy_order(CostModel::new(Arch::Neon128, Compiler::GccLike)) {
        outln!(
            "{:>10} {:>13}/{:<8} {:>13}/{:<8}",
            r.model,
            r.largest_first.0,
            r.largest_first.1,
            r.smallest_first.0,
            r.smallest_first.1
        );
    }
}

fn fusion_cmd() {
    heading("Instruction mix — batch dataflow nodes vs SIMD instructions HCG emitted (NEON)");
    outln!("{:>10} {:>12} {:>8}", "Model", "batch nodes", "vops");
    for r in fusion_report(Arch::Neon128) {
        outln!("{:>10} {:>12} {:>8}", r.model, r.batch_nodes, r.vops);
    }
}

/// Micro-benchmark instruction selection: mean nanoseconds per lookup for
/// the linear `candidates()` scan vs the bucketed [`hcg_isa::InstrIndex`],
/// over a representative candidate-tree mix (hits, a compound hit and a
/// miss) on the NEON set.
fn instr_select_micro() -> (f64, f64) {
    use hcg_graph::matching::{find_instruction, find_instruction_indexed};
    use hcg_graph::{DfgInput, ValTree};
    use hcg_model::op::ElemOp;
    use hcg_model::DataType;
    use std::hint::black_box;
    use std::time::Instant;

    let leaf = |i| ValTree::Leaf(DfgInput::External(i));
    let node = |op, args| ValTree::Op { op, args };
    let trees = [
        node(ElemOp::Sub, vec![leaf(0), leaf(1)]),
        node(
            ElemOp::Shr(1),
            vec![node(ElemOp::Add, vec![leaf(0), leaf(1)])],
        ),
        node(
            ElemOp::Add,
            vec![leaf(0), node(ElemOp::Mul, vec![leaf(1), leaf(2)])],
        ),
        node(ElemOp::Mul, vec![leaf(0), leaf(1)]),
        node(ElemOp::Div, vec![leaf(0), leaf(1)]), // i32 miss
    ];
    let set = hcg_isa::sets::builtin(Arch::Neon128);
    let index = hcg_isa::InstrIndex::build(&set);
    let reps = 20_000u32;
    let lookups = (reps as usize * trees.len()) as f64;

    let start = Instant::now();
    for _ in 0..reps {
        for t in &trees {
            black_box(find_instruction(&set, DataType::I32, 4, black_box(t)));
        }
    }
    let linear_ns = start.elapsed().as_nanos() as f64 / lookups;

    let start = Instant::now();
    for _ in 0..reps {
        for t in &trees {
            black_box(find_instruction_indexed(
                &set,
                &index,
                DataType::I32,
                4,
                black_box(t),
            ));
        }
    }
    let indexed_ns = start.elapsed().as_nanos() as f64 / lookups;
    (linear_ns, indexed_ns)
}

fn fleet_cmd(threads: usize, json: Option<&std::path::Path>) {
    heading("Parallel fleet — model × generator × arch compile jobs on the work-stealing pool");
    // One fleet sweep is only ~100 ms, so a single measurement is noise
    // bound; both modes run a few times and keep their fastest sweep.
    // Fresh sessions per sweep so no run inherits another's cached
    // front-end artifacts.
    const REPS: usize = 3;
    let n_models = benchmark_sessions().len();
    let best = |parallel: bool| -> hcg_bench::FleetRun {
        let mut best: Option<hcg_bench::FleetRun> = None;
        for _ in 0..REPS {
            let sessions = benchmark_sessions();
            let run = if parallel {
                run_fleet(&sessions, &fleet::FLEET_ARCHES, threads)
            } else {
                run_fleet_sequential(&sessions, &fleet::FLEET_ARCHES)
            };
            if best.as_ref().is_none_or(|b| run.elapsed < b.elapsed) {
                best = Some(run);
            }
        }
        best.expect("REPS > 0")
    };
    let seq = best(false);
    let par = best(true);
    let identical = seq.sources() == par.sources();
    let speedup = seq.elapsed.as_secs_f64() / par.elapsed.as_secs_f64().max(1e-9);
    outln!(
        "  {} jobs ({} models x {} generators x {} arches), best of {REPS} sweeps",
        par.outcomes.len(),
        n_models,
        fleet::FLEET_GENERATORS.len(),
        fleet::FLEET_ARCHES.len()
    );
    outln!(
        "  sequential: {:>8.2} ms  ({:>7.0} jobs/s)",
        seq.elapsed.as_secs_f64() * 1e3,
        seq.jobs_per_sec()
    );
    outln!(
        "  parallel:   {:>8.2} ms  ({:>7.0} jobs/s) on {} worker(s), {} steal(s)",
        par.elapsed.as_secs_f64() * 1e3,
        par.jobs_per_sec(),
        par.workers,
        par.steals
    );
    let host_cores = hcg_exec::effective_threads(0);
    outln!(
        "  speedup: {speedup:.2}x (scales with available cores; this host exposes {host_cores})"
    );
    outln!("  outputs byte-identical to sequential: {identical}");
    // Honesty note: with more workers than physical cores the pool is
    // oversubscribed — sequential parity is the best possible outcome, so a
    // ~1x "speedup" is expected, not a regression.
    let parity_is_ceiling = par.workers > host_cores;
    if parity_is_ceiling {
        outln!(
            "  warning: {} worker(s) oversubscribe the {host_cores} host core(s); \
             sequential parity is the ceiling for this run, not a target",
            par.workers
        );
    }
    assert!(identical, "parallel fleet output diverged from sequential");

    let (linear_ns, indexed_ns) = instr_select_micro();
    outln!(
        "  instruction selection: linear {linear_ns:.0} ns/lookup, indexed {indexed_ns:.0} ns/lookup ({:.2}x)",
        linear_ns / indexed_ns.max(1e-9)
    );

    if let Some(path) = json {
        let body = format!(
            "{{\n  \"experiment\": \"fleet\",\n  \"jobs\": {},\n  \"models\": {},\n  \"generators\": {},\n  \"arches\": {},\n  \"threads_requested\": {},\n  \"workers\": {},\n  \"host_cores\": {},\n  \"parity_is_ceiling\": {},\n  \"steals\": {},\n  \"sequential_ms\": {:.3},\n  \"parallel_ms\": {:.3},\n  \"speedup\": {:.3},\n  \"jobs_per_sec\": {:.1},\n  \"identical_outputs\": {},\n  \"instr_select\": {{\n    \"linear_ns_per_lookup\": {:.1},\n    \"indexed_ns_per_lookup\": {:.1},\n    \"speedup\": {:.3}\n  }}\n}}\n",
            par.outcomes.len(),
            n_models,
            fleet::FLEET_GENERATORS.len(),
            fleet::FLEET_ARCHES.len(),
            threads,
            par.workers,
            host_cores,
            parity_is_ceiling,
            par.steals,
            seq.elapsed.as_secs_f64() * 1e3,
            par.elapsed.as_secs_f64() * 1e3,
            speedup,
            par.jobs_per_sec(),
            identical,
            linear_ns,
            indexed_ns,
            linear_ns / indexed_ns.max(1e-9),
        );
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match std::fs::write(path, body) {
            Ok(()) => outln!("  (bench results written to {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

fn incremental_cmd(args: &cli::CommonArgs) {
    heading("Incremental recompilation — edit-recompile vs from-scratch, dirty-region splicing");
    let cfg = IncrementalBenchConfig {
        edits: args.edits,
        seed: args.seed,
    };
    let rows = run_incremental_bench(&cfg);
    outln!(
        "  {} edits per model, {} generators x {} arches checked per edit",
        cfg.edits,
        fleet::FLEET_GENERATORS.len(),
        fleet::FLEET_ARCHES.len()
    );
    outln!(
        "  {:>10} {:>6} {:>14} {:>14} {:>9} {:>10} {:>12} {:>9}",
        "Model",
        "edits",
        "incr(ms)",
        "scratch(ms)",
        "speedup",
        "admitted",
        "invalidated",
        "spliced"
    );
    let mut all_identical = true;
    let (mut inc_total, mut scratch_total) = (0.0f64, 0.0f64);
    for r in &rows {
        all_identical &= r.identical;
        inc_total += r.incremental.as_secs_f64();
        scratch_total += r.scratch.as_secs_f64();
        outln!(
            "  {:>10} {:>6} {:>14.2} {:>14.2} {:>8.2}x {:>10} {:>12} {:>9}",
            r.model,
            r.edits,
            r.incremental.as_secs_f64() * 1e3,
            r.scratch.as_secs_f64() * 1e3,
            r.speedup(),
            r.regions_admitted,
            r.regions_invalidated,
            r.plans_spliced
        );
    }
    let overall = scratch_total / inc_total.max(1e-12);
    outln!("  overall speedup: {overall:.2}x (scratch {scratch_total:.3}s / incremental {inc_total:.3}s)");
    outln!("  incremental outputs byte-identical to scratch: {all_identical}");
    let snap = hcg_obs::MetricsRegistry::global().snapshot();
    outln!(
        "  metrics: {} edits applied, {} regions admitted, {} invalidated, {} plans spliced",
        snap.counter("incremental.edits").unwrap_or(0),
        snap.counter("incremental.regions_admitted").unwrap_or(0),
        snap.counter("incremental.regions_invalidated").unwrap_or(0),
        snap.counter("incremental.plans_spliced").unwrap_or(0)
    );
    if let Some(path) = &args.json {
        let mut body = String::from("{\n  \"experiment\": \"incremental\",\n  \"models\": [\n");
        for (i, r) in rows.iter().enumerate() {
            body.push_str(&format!(
                "    {{\"model\": \"{}\", \"edits\": {}, \"incremental_ms\": {:.3}, \
                 \"scratch_ms\": {:.3}, \"speedup\": {:.3}, \"identical\": {}, \
                 \"regions_admitted\": {}, \"regions_invalidated\": {}, \"plans_spliced\": {}}}{}\n",
                r.model,
                r.edits,
                r.incremental.as_secs_f64() * 1e3,
                r.scratch.as_secs_f64() * 1e3,
                r.speedup(),
                r.identical,
                r.regions_admitted,
                r.regions_invalidated,
                r.plans_spliced,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        body.push_str(&format!(
            "  ],\n  \"edits_per_model\": {},\n  \"overall_speedup\": {overall:.3},\n  \"identical_outputs\": {all_identical}\n}}\n",
            cfg.edits
        ));
        hcg_obs::json::validate(&body).expect("incremental JSON must validate");
        write_report_file(path, &body, "incremental bench");
    }
    assert!(
        all_identical,
        "incremental recompilation diverged from scratch output"
    );
}

fn search_cmd(args: &cli::CommonArgs) {
    heading("Search-based mapping — greedy vs beam region tilings, profile-guided calibration");
    let report = run_search(args.beam, args.calibrate, args.seed, args.iters);
    for line in render_search(&report).lines() {
        outln!("  {line}");
    }
    let snap = hcg_obs::MetricsRegistry::global().snapshot();
    outln!(
        "  search metrics: {} run(s), {} state(s) expanded, {} pruned by lower bound, \
         {} tiling(s) completed, memo {} hit(s) / {} miss(es)",
        snap.counter("search.runs").unwrap_or(0),
        snap.counter("search.states_expanded").unwrap_or(0),
        snap.counter("search.pruned_lb").unwrap_or(0),
        snap.counter("search.tilings_completed").unwrap_or(0),
        snap.counter("search.memo_hits").unwrap_or(0),
        snap.counter("search.memo_misses").unwrap_or(0)
    );
    if let Some(path) = &args.json {
        let body = search_json(&report);
        hcg_obs::json::validate(&body).expect("search JSON must validate");
        write_report_file(path, &body, "search report");
    }
    assert!(
        report.gate.all_proved(),
        "beam-mapped programs failed the verification gate; see the table above"
    );
    if report.calibrated {
        assert!(
            !report.strictly_better().is_empty(),
            "calibrated beam search found no strict improvement over greedy"
        );
    }
}

fn fuzz_cmd(args: &cli::CommonArgs) {
    heading("Differential fuzzing — random models through every generator, arch and oracle");
    let mut cfg = hcg_fuzz::FuzzConfig {
        threads: args.threads,
        ..hcg_fuzz::FuzzConfig::new(args.seed, args.iters)
    };
    if args.beam > 0 {
        cfg.oracle.mapping = hcg_core::MappingStrategy::Beam { width: args.beam };
    }
    let report = hcg_fuzz::run_fuzz(&cfg);
    outln!(
        "  {} cases (seed {}), {} actors total, digest {:016x}",
        report.iters,
        report.seed,
        report.total_actors,
        report.cases_digest
    );
    outln!("  hcg mapping strategy: {}", cfg.oracle.mapping.label());
    outln!(
        "  passed: {}/{}  divergences: {}  shrink steps: {}",
        report.passed,
        report.iters,
        report.divergence_count(),
        report.shrink_steps()
    );
    outln!(
        "  corpus: {} committed repro(s) replayed clean",
        report.corpus_replayed
    );
    outln!(
        "  {:.1} cases/s on {} worker(s) ({:.2} s total)",
        report.cases_per_sec(),
        report.threads,
        report.elapsed.as_secs_f64()
    );
    for (key, value) in report.telemetry.iter() {
        if let (Some(stage), hcg_obs::MetricValue::Gauge(secs)) =
            (key.strip_prefix("fuzz.stage_seconds."), value)
        {
            outln!("    {:>18}: {:>9.1} ms", stage, secs * 1e3);
        }
    }
    for f in &report.failures {
        outln!(
            "  FAILURE seed {:016x}: {} divergence(s), shrunk {} -> {} actors{}",
            f.seed,
            f.divergences.len(),
            f.shrink.initial_actors,
            f.shrink.final_actors,
            f.repro
                .as_deref()
                .map(|p| format!(", repro at {p}"))
                .unwrap_or_default()
        );
        for d in &f.divergences {
            outln!("      [{}] {}", d.check, d.detail);
        }
    }
    if let Some(path) = &args.json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match std::fs::write(path, report.to_json()) {
            Ok(()) => outln!("  (fuzz report written to {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    assert_eq!(
        report.divergence_count(),
        0,
        "fuzzing found divergences; see the report above"
    );
}

fn profile_cmd(args: &cli::CommonArgs) {
    heading("Execution profile — cost-model cycles attributed to source actors and SIMD regions");
    // Trace the whole matrix: pipeline/pass/session spans light up inside
    // the generators while the profiler prices their output.
    hcg_obs::clear_events();
    hcg_obs::set_tracing(true);
    let entries = profile_matrix(args.model.as_deref());
    hcg_obs::set_tracing(false);
    let events = hcg_obs::take_events();
    if entries.is_empty() {
        outln!(
            "  no benchmark model matches --model {:?}",
            args.model.as_deref().unwrap_or("")
        );
        return;
    }
    for e in &entries {
        // Conservation: per-actor attribution must sum to the VM total.
        assert_eq!(
            e.profile.attributed_cycles(),
            e.profile.total_cycles,
            "cycle attribution diverged from the VM total"
        );
        for line in e.profile.render(5).lines() {
            outln!("  {line}");
        }
        outln!();
    }
    let snap = hcg_obs::MetricsRegistry::global().snapshot();
    outln!(
        "  conservation: attributed == total cycles for all {} profiles",
        entries.len()
    );
    outln!(
        "  metrics: {} pipeline run(s), {} pass(es) timed; {} trace span(s) captured",
        snap.counter("pipeline.runs").unwrap_or(0),
        snap.counter("pipeline.stages").unwrap_or(0),
        events.len()
    );
    outln!("\n  span tree (head):");
    for line in hcg_obs::render_tree(&events).lines().take(12) {
        outln!("  {line}");
    }
    if let Some(path) = &args.trace {
        let trace = hcg_obs::chrome_trace_json(&events);
        hcg_obs::json::validate(&trace).expect("chrome trace JSON must validate");
        write_report_file(path, &trace, "trace");
    }
    if let Some(path) = &args.json {
        let body = profile_json(&entries);
        hcg_obs::json::validate(&body).expect("profile JSON must validate");
        write_report_file(path, &body, "profile");
    }
}

/// The model set the static gates cover: the six paper benchmarks plus the
/// bundled example models (the same set `lint --dump-examples` writes out).
fn gate_models() -> Vec<hcg_model::Model> {
    let mut models = benchmark_models();
    models.push(library::fig2_model());
    models.push(library::fig4_model());
    models.push(library::switch_model(256));
    models.push(library::mixed_width_model(256));
    models
}

fn gate_generators() -> Vec<Box<dyn CodeGenerator>> {
    vec![
        Box::new(HcgGen::new()),
        Box::new(SimulinkCoderGen::new()),
        Box::new(hcg_baselines::DfSynthGen::new()),
    ]
}

fn lint_cmd() {
    heading("Static analysis — model and generated-program lints over the bundled models");
    let lib = hcg_kernels::CodeLibrary::new();
    let mut reports = Vec::new();
    let mut programs = 0usize;
    for m in gate_models() {
        reports.push(hcg_analysis::lint_model(&m));
        for generator in gate_generators() {
            for arch in Arch::ALL {
                let prog = generator.generate(&m, arch).unwrap_or_else(|e| {
                    panic!("{} on {arch} failed on {}: {e}", generator.name(), m.name)
                });
                programs += 1;
                reports.push(hcg_analysis::lint_program(&prog, &lib));
            }
        }
    }
    // One shared formatter for every diagnostics consumer; quiet subjects
    // are elided from the transcript.
    let noisy: Vec<&hcg_analysis::LintReport> = reports
        .iter()
        .filter(|r| !r.diagnostics.is_empty())
        .collect();
    let (text, has_errors) = hcg_analysis::format_reports(noisy.iter().copied());
    for line in text.lines() {
        outln!("  {line}");
    }
    let warnings: usize = reports
        .iter()
        .map(|r| r.of_severity(hcg_analysis::Severity::Warning).len())
        .sum();
    outln!(
        "  {} model(s), {} generated program(s) linted: {} finding report(s), {} warning(s)",
        gate_models().len(),
        programs,
        noisy.len(),
        warnings
    );
    assert!(!has_errors, "lint gate found error-severity diagnostics");
}

fn verify_cmd(args: &cli::CommonArgs) {
    heading("Static verification — symbolic equivalence proof for every generated program");
    let arches = [Arch::Neon128, Arch::Avx256];
    let mut rows = Vec::new();
    let mut lint_reports = Vec::new();
    let mut all_equivalent = true;
    hcg_obs::clear_events();
    hcg_obs::set_tracing(true);
    for m in gate_models() {
        for generator in gate_generators() {
            for arch in arches {
                let prog = generator.generate(&m, arch).unwrap_or_else(|e| {
                    panic!("{} on {arch} failed on {}: {e}", generator.name(), m.name)
                });
                let outcome = hcg_verify::verify_program(&m, &prog).unwrap_or_else(|e| {
                    panic!(
                        "verifier rejected {} {} on {arch}: {e}",
                        m.name,
                        generator.name()
                    )
                });
                all_equivalent &= outcome.equivalent;
                let ranges = hcg_verify::range_lint(&prog);
                rows.push((
                    m.name.clone(),
                    generator.name(),
                    arch,
                    outcome,
                    ranges.diagnostics.len(),
                ));
                lint_reports.push(ranges);
            }
        }
    }
    hcg_obs::set_tracing(false);
    let spans = hcg_obs::take_events();

    outln!(
        "  {:>12} {:>16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Model",
        "Generator",
        "Arch",
        "proved",
        "elems",
        "exprs",
        "rlints"
    );
    for (model, generator, arch, outcome, rlints) in &rows {
        outln!(
            "  {:>12} {:>16} {:>8} {:>8} {:>8} {:>8} {:>8}",
            model,
            generator,
            format!("{arch}"),
            if outcome.equivalent { "yes" } else { "NO" },
            outcome.elems,
            outcome.exprs,
            rlints
        );
        if let Some(w) = &outcome.witness {
            outln!("      divergence: {w}");
        }
    }
    // Same shared formatter as the lint front end; value-range findings on
    // the bundled models are advisory warnings, shown but non-fatal.
    let noisy: Vec<&hcg_analysis::LintReport> = lint_reports
        .iter()
        .filter(|r| !r.diagnostics.is_empty())
        .collect();
    let (text, range_errors) = hcg_analysis::format_reports(noisy.iter().copied());
    if !noisy.is_empty() {
        outln!("\n  value-range findings:");
        for line in text.lines() {
            outln!("  {line}");
        }
    }
    let verify_spans = spans.iter().filter(|e| e.cat == "verify").count();
    let snap = hcg_obs::MetricsRegistry::global().snapshot();
    outln!(
        "\n  {} program(s) verified, {} proved, {} divergent; {} expression node(s) interned",
        snap.counter("verify.programs").unwrap_or(0),
        snap.counter("verify.proved").unwrap_or(0),
        snap.counter("verify.divergent").unwrap_or(0),
        snap.counter("verify.exprs").unwrap_or(0)
    );
    outln!("  {verify_spans} verify span(s) captured in the tracer");

    if let Some(path) = &args.json {
        let mut body = String::from("{\n  \"experiment\": \"verify\",\n  \"results\": [\n");
        for (i, (model, generator, arch, outcome, rlints)) in rows.iter().enumerate() {
            body.push_str(&format!(
                "    {{\"model\": \"{model}\", \"generator\": \"{generator}\", \"arch\": \"{arch}\", \
                 \"equivalent\": {}, \"outports\": {}, \"states\": {}, \"elems\": {}, \"exprs\": {}, \
                 \"range_findings\": {}}}{}\n",
                outcome.equivalent,
                outcome.outports,
                outcome.states,
                outcome.elems,
                outcome.exprs,
                rlints,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        body.push_str(&format!(
            "  ],\n  \"programs\": {},\n  \"all_equivalent\": {all_equivalent},\n  \"range_errors\": {range_errors}\n}}\n",
            rows.len()
        ));
        hcg_obs::json::validate(&body).expect("verify JSON must validate");
        write_report_file(path, &body, "verify report");
    }
    assert!(
        all_equivalent,
        "static verification found divergent programs; see the table above"
    );
    assert!(
        !range_errors,
        "value-range analysis found error-severity findings on bundled models"
    );
}

fn serve_cmd(args: &cli::CommonArgs) {
    heading("Compile service — hcg-serve daemon in the foreground (POST /shutdown to stop)");
    let handle = hcg_serve::spawn(hcg_serve::ServeConfig {
        addr: format!("127.0.0.1:{}", args.port),
        workers: args.threads,
        access_log: args.access_log.clone(),
        ..hcg_serve::ServeConfig::default()
    })
    .expect("daemon binds");
    outln!("  listening on {}", handle.addr());
    outln!(
        "  POST /compile?generator=hcg|simulink-coder|dfsynth&arch=neon128|sse128|avx256&beam=W"
    );
    outln!(
        "  GET /metrics[?format=prometheus] | GET /health | GET /debug/requests | POST /shutdown"
    );
    if let Some(path) = &args.access_log {
        outln!("  access log: {}", path.display());
    }
    handle.wait();
    outln!("  daemon stopped");
}

fn serve_smoke_cmd() {
    heading("Compile service smoke — two bundled models, twice each, over real TCP");
    for line in run_serve_smoke().lines() {
        outln!("  {line}");
    }
}

fn serve_bench_cmd(args: &cli::CommonArgs) {
    heading("Compile service bench — Zipf-skewed replay against the content-addressed cache");
    let config = ServeBenchConfig {
        requests: args.requests,
        clients: args.clients,
        corpus_size: args.corpus_size,
        seed: args.seed,
        workers: args.threads,
        ..ServeBenchConfig::default()
    };
    let report = run_serve_bench(&config);
    for line in render_serve_bench(&report).lines() {
        outln!("  {line}");
    }
    if let Some(path) = &args.json {
        let body = serve_bench_json(&report);
        hcg_obs::json::validate(&body).expect("serve bench JSON must validate");
        write_report_file(path, &body, "serve bench report");
    }
    assert!(
        report.identical,
        "service responses diverged from direct compiles"
    );
    // Under a Zipf-skewed mix with a meaningful replay length the cache
    // must earn its keep; short smoke runs (requests < 2x corpus) skip
    // the rate gate because most requests are necessarily cold.
    if report.config.requests >= 2 * report.config.corpus_size {
        assert!(
            report.hit_rate() > 0.5,
            "hit rate {:.1}% under Zipf replay; expected > 50%",
            report.hit_rate() * 100.0
        );
    }
}

fn obs_bench_cmd(args: &cli::CommonArgs) {
    heading("Observability overhead — the serve workload with telemetry layered on");
    let defaults = ObsBenchConfig::default();
    let config = ObsBenchConfig {
        requests: args.requests,
        clients: args.clients,
        corpus_size: args.corpus_size,
        seed: args.seed,
        workers: args.threads,
        access_log: args.access_log.clone().unwrap_or(defaults.access_log),
        ..defaults
    };
    let report = run_obs_bench(&config);
    for line in render_obs_bench(&report).lines() {
        outln!("  {line}");
    }
    if let Some(path) = &args.json {
        let body = obs_bench_json(&report);
        hcg_obs::json::validate(&body).expect("obs bench JSON must validate");
        write_report_file(path, &body, "observability overhead report");
    }
}

/// Write a report body to `path`, creating parent directories.
fn write_report_file(path: &std::path::Path, body: &str, what: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, body) {
        Ok(()) => outln!("  ({what} written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
