//! `lint` — run the `hcg-analysis` static analyzer on model files and on
//! the programs every generator produces from them.
//!
//! ```text
//! cargo run -p hcg-bench --bin lint -- model.xml [more.xml ...]
//! cargo run -p hcg-bench --bin lint -- --models-only model.xml
//! cargo run -p hcg-bench --bin lint -- --dump-examples examples/models
//! ```
//!
//! For each model file the tool prints the model-lint report; when the
//! model is clean it then generates code with HCG, the Simulink-Coder-like
//! baseline and the DFSynth-like baseline for every architecture and prints
//! each program's lint report. The exit status is non-zero when any report
//! contains error-severity diagnostics.

use hcg_analysis::{format_reports, lint_model_file, lint_program, LintReport};
use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
use hcg_core::{CodeGenerator, HcgGen};
use hcg_isa::Arch;
use hcg_kernels::CodeLibrary;
use hcg_model::library;
use hcg_model::parser::{model_from_xml, model_to_xml};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: lint [--models-only] <model.xml>...");
        eprintln!("       lint --dump-examples <dir>");
        std::process::exit(2);
    }
    if args[0] == "--dump-examples" {
        let dir = args.get(1).map(String::as_str).unwrap_or("examples/models");
        dump_examples(dir);
        return;
    }
    let models_only = args.iter().any(|a| a == "--models-only");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let mut failed = false;
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lint: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        let report = lint_model_file(&text);
        failed |= print_report(&report);
        if report.has_errors() || models_only {
            continue;
        }
        let model = match model_from_xml(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("lint: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let lib = CodeLibrary::new();
        let generators: Vec<Box<dyn CodeGenerator>> = vec![
            Box::new(HcgGen::new()),
            Box::new(SimulinkCoderGen::new()),
            Box::new(DfSynthGen::new()),
        ];
        for generator in &generators {
            for arch in Arch::ALL {
                match generator.generate(&model, arch) {
                    Ok(prog) => failed |= print_report(&lint_program(&prog, &lib)),
                    Err(e) => {
                        eprintln!(
                            "lint: {} on {arch} failed to generate: {e}",
                            generator.name()
                        );
                        failed = true;
                    }
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Print a report through the shared diagnostics formatter; returns true
/// when it contains errors.
fn print_report(report: &LintReport) -> bool {
    let (text, has_errors) = format_reports([report]);
    print!("{text}");
    has_errors
}

/// Write the bundled library models out as XML files, so the lint gate (and
/// users) have on-disk example inputs.
fn dump_examples(dir: &str) {
    std::fs::create_dir_all(dir).expect("create example dir");
    for model in library::paper_benchmarks() {
        let path = format!("{dir}/{}.xml", model.name);
        std::fs::write(&path, model_to_xml(&model)).expect("write example model");
        println!("wrote {path}");
    }
    for (name, model) in [
        ("fig2", library::fig2_model()),
        ("fig4", library::fig4_model()),
        ("switch", library::switch_model(256)),
        ("mixed_width", library::mixed_width_model(256)),
    ] {
        let path = format!("{dir}/{name}.xml");
        std::fs::write(&path, model_to_xml(&model)).expect("write example model");
        println!("wrote {path}");
    }
}
