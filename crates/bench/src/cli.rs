//! Shared command-line parsing for the `repro` binary.
//!
//! Every subcommand understands the same flag vocabulary (`--threads`,
//! `--json`, `--seed`, `--iters`, `--edits`, `--out`, `--wall-clock`,
//! `--model`, `--trace`, `--beam`, `--calibrate`, `--requests`,
//! `--clients`, `--corpus-size`, `--port`, `--access-log`), parsed once
//! here instead of per subcommand. Unknown flags are errors; the first
//! bare word is the subcommand.

use std::path::PathBuf;

/// Parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonArgs {
    /// Subcommand (first non-flag argument), when given.
    pub cmd: Option<String>,
    /// `--wall-clock`: use wall-clock meters where supported.
    pub wall_clock: bool,
    /// `--out PATH`: transcript destination.
    pub out_path: PathBuf,
    /// `--threads N`: worker threads (`0` = available parallelism).
    pub threads: usize,
    /// `--json PATH`: machine-readable report destination.
    pub json: Option<PathBuf>,
    /// `--seed S`: base seed for randomized subcommands.
    pub seed: u64,
    /// `--iters N`: iteration count for randomized subcommands.
    pub iters: usize,
    /// `--edits N`: edit count per model for the incremental subcommand.
    pub edits: usize,
    /// `--model NAME`: restrict a subcommand to one benchmark model.
    pub model: Option<String>,
    /// `--trace PATH`: Chrome trace-event JSON destination.
    pub trace: Option<PathBuf>,
    /// `--beam W`: beam width for search-mapped subcommands (`0` = greedy).
    pub beam: usize,
    /// `--calibrate`: run profile-guided cost calibration before the beam
    /// pass (the `search` subcommand's full loop).
    pub calibrate: bool,
    /// `--requests N`: total requests replayed by `serve-bench`.
    pub requests: usize,
    /// `--clients C`: concurrent client threads for `serve-bench`.
    pub clients: usize,
    /// `--corpus-size M`: synthesized models in the `serve-bench` corpus.
    pub corpus_size: usize,
    /// `--port P`: TCP port for the `serve` subcommand (`0` = ephemeral).
    pub port: u16,
    /// `--access-log PATH`: per-request JSONL destination for the `serve`
    /// and `obs-bench` subcommands.
    pub access_log: Option<PathBuf>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            cmd: None,
            wall_clock: false,
            out_path: PathBuf::from("target/repro_output.txt"),
            threads: 0,
            json: None,
            seed: 0,
            iters: 200,
            edits: 50,
            model: None,
            trace: None,
            beam: 0,
            calibrate: false,
            requests: 5000,
            clients: 8,
            corpus_size: 1000,
            port: 0,
            access_log: None,
        }
    }
}

/// Parse an argument stream (usually `std::env::args().skip(1)`).
///
/// # Errors
///
/// Returns a usage message when a flag is missing its value, a numeric
/// value does not parse, or a second bare word appears.
pub fn parse_args(args: impl Iterator<Item = String>) -> Result<CommonArgs, String> {
    let mut out = CommonArgs::default();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wall-clock" => out.wall_clock = true,
            "--out" => {
                out.out_path = PathBuf::from(args.next().ok_or("--out requires a path")?);
            }
            "--json" => {
                out.json = Some(PathBuf::from(args.next().ok_or("--json requires a path")?));
            }
            "--threads" => {
                out.threads = parse_num(args.next(), "--threads")?;
            }
            "--seed" => {
                out.seed = parse_num(args.next(), "--seed")?;
            }
            "--iters" => {
                out.iters = parse_num(args.next(), "--iters")?;
            }
            "--edits" => {
                out.edits = parse_num(args.next(), "--edits")?;
            }
            "--model" => {
                out.model = Some(args.next().ok_or("--model requires a name")?);
            }
            "--trace" => {
                out.trace = Some(PathBuf::from(args.next().ok_or("--trace requires a path")?));
            }
            "--beam" => {
                out.beam = parse_num(args.next(), "--beam")?;
            }
            "--calibrate" => out.calibrate = true,
            "--requests" => {
                out.requests = parse_num(args.next(), "--requests")?;
            }
            "--clients" => {
                out.clients = parse_num(args.next(), "--clients")?;
            }
            "--corpus-size" => {
                out.corpus_size = parse_num(args.next(), "--corpus-size")?;
            }
            "--port" => {
                out.port = parse_num(args.next(), "--port")?;
            }
            "--access-log" => {
                out.access_log = Some(PathBuf::from(
                    args.next().ok_or("--access-log requires a path")?,
                ));
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}"));
            }
            word => {
                if out.cmd.is_some() {
                    return Err(format!("unexpected extra argument {word:?}"));
                }
                out.cmd = Some(word.to_owned());
            }
        }
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(value: Option<String>, flag: &str) -> Result<T, String> {
    value
        .ok_or_else(|| format!("{flag} requires a number"))?
        .parse()
        .map_err(|_| format!("{flag} requires a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CommonArgs, String> {
        parse_args(words.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, CommonArgs::default());
        assert_eq!(a.iters, 200);
        assert_eq!(a.threads, 0);
    }

    #[test]
    fn full_fuzz_invocation() {
        let a = parse(&[
            "fuzz",
            "--seed",
            "7",
            "--iters",
            "50",
            "--threads",
            "3",
            "--json",
            "x.json",
        ])
        .unwrap();
        assert_eq!(a.cmd.as_deref(), Some("fuzz"));
        assert_eq!(a.seed, 7);
        assert_eq!(a.iters, 50);
        assert_eq!(a.threads, 3);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("x.json")));
    }

    #[test]
    fn flag_order_is_free() {
        let a = parse(&["--threads", "2", "fleet", "--wall-clock"]).unwrap();
        assert_eq!(a.cmd.as_deref(), Some("fleet"));
        assert_eq!(a.threads, 2);
        assert!(a.wall_clock);
    }

    #[test]
    fn profile_invocation() {
        let a = parse(&[
            "profile", "--model", "FIR", "--json", "p.json", "--trace", "t.json",
        ])
        .unwrap();
        assert_eq!(a.cmd.as_deref(), Some("profile"));
        assert_eq!(a.model.as_deref(), Some("FIR"));
        assert_eq!(a.trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("p.json")));
    }

    #[test]
    fn incremental_invocation() {
        let a = parse(&["incremental", "--seed", "3", "--edits", "25"]).unwrap();
        assert_eq!(a.cmd.as_deref(), Some("incremental"));
        assert_eq!(a.seed, 3);
        assert_eq!(a.edits, 25);
        assert_eq!(parse(&[]).unwrap().edits, 50);
    }

    #[test]
    fn search_invocation() {
        let a = parse(&["search", "--beam", "4", "--calibrate", "--json", "s.json"]).unwrap();
        assert_eq!(a.cmd.as_deref(), Some("search"));
        assert_eq!(a.beam, 4);
        assert!(a.calibrate);
        let d = parse(&[]).unwrap();
        assert_eq!(d.beam, 0);
        assert!(!d.calibrate);
    }

    #[test]
    fn serve_bench_invocation() {
        let a = parse(&[
            "serve-bench",
            "--requests",
            "5000",
            "--clients",
            "16",
            "--corpus-size",
            "1000",
            "--json",
            "b.json",
        ])
        .unwrap();
        assert_eq!(a.cmd.as_deref(), Some("serve-bench"));
        assert_eq!(a.requests, 5000);
        assert_eq!(a.clients, 16);
        assert_eq!(a.corpus_size, 1000);
        let d = parse(&["serve", "--port", "8901"]).unwrap();
        assert_eq!(d.port, 8901);
        assert_eq!(parse(&[]).unwrap().port, 0);
        assert_eq!(parse(&[]).unwrap().requests, 5000);
    }

    #[test]
    fn obs_bench_invocation() {
        let a = parse(&[
            "obs-bench",
            "--requests",
            "2000",
            "--access-log",
            "target/access.jsonl",
            "--json",
            "o.json",
        ])
        .unwrap();
        assert_eq!(a.cmd.as_deref(), Some("obs-bench"));
        assert_eq!(a.requests, 2000);
        assert_eq!(
            a.access_log.as_deref(),
            Some(std::path::Path::new("target/access.jsonl"))
        );
        assert_eq!(parse(&[]).unwrap().access_log, None);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--edits"]).is_err());
        assert!(parse(&["--edits", "x"]).is_err());
        assert!(parse(&["--model"]).is_err());
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--threads", "abc"]).is_err());
        assert!(parse(&["--seed", "-1"]).is_err());
        assert!(parse(&["--beam"]).is_err());
        assert!(parse(&["--beam", "wide"]).is_err());
        assert!(parse(&["--requests"]).is_err());
        assert!(parse(&["--clients", "many"]).is_err());
        assert!(parse(&["--corpus-size"]).is_err());
        assert!(parse(&["--port", "70000"]).is_err());
        assert!(parse(&["--access-log"]).is_err());
        assert!(parse(&["--calibrate", "--bogus"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["fleet", "fuzz"]).is_err());
        assert!(parse(&["--out"]).is_err());
        assert!(parse(&["--json"]).is_err());
    }
}
