//! The `repro -- search` experiment: greedy vs beam-search region mapping
//! with profile-guided cost calibration, plus the semantic gate.
//!
//! The full loop (`--beam W --calibrate`):
//!
//! 1. compile every paper benchmark with the greedy mapper and profile it
//!    on the calibration platform model — the GCC-like table with
//!    [`CALIBRATION_FUSED_LATENCY`] extra cycles on fused (≥ 3-source)
//!    SIMD ops, modelling an in-order core serialising a
//!    multiply-accumulate on its accumulator chain;
//! 2. feed the per-instruction evidence into
//!    [`hcg_isa::CostCalibrator`] (through the profiles' own JSON, the
//!    same bytes `BENCH_profile.json` commits) and derive the calibrated
//!    cost overlay;
//! 3. re-map every benchmark with [`MappingStrategy::Beam`] over the
//!    overlaid instruction set and compare modeled total cycles — the
//!    beam splits fusions the calibrated table now prices above their
//!    single-op sequences, while greedy's structure-driven largest-first
//!    selection keeps them;
//! 4. gate semantics: every beam-mapped program of `cases` seeded fuzz
//!    models must be value-equivalent to the model reference on the VM
//!    and prove under `hcg_verify`.
//!
//! Without `--calibrate` the beam scores with the builtin tables, where
//! greedy is already optimal on this vocabulary — rows tie by design (the
//! beam seeds its incumbent with the greedy plan and only replaces it on
//! strict improvement).

use crate::fleet::FLEET_ARCHES;
use hcg_core::{CodeGenerator, HcgGen, HcgOptions, MappingStrategy, Reference};
use hcg_fuzz::case_seed;
use hcg_fuzz::gen::{generate_model, GenConfig};
use hcg_fuzz::oracle::random_inputs;
use hcg_isa::{sets, Arch, CostCalibrator, CostOverlay};
use hcg_kernels::CodeLibrary;
use hcg_model::library;
use hcg_vm::{profile, Compiler, CostModel, Machine};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Extra per-issue cycles the calibration platform charges fused SIMD
/// operations. With the builtin tables (fused ops cost 2, their split
/// pairs 1 + 1) this prices observed fusion at 4 — strictly above the
/// split sequence — which is exactly the regime where search beats greedy.
pub const CALIBRATION_FUSED_LATENCY: u64 = 2;

/// VM steps run per gate case for the value-equivalence side.
const GATE_STEPS: usize = 2;

/// One `model × arch` comparison row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRow {
    /// Benchmark model name (full, e.g. `FIR_1024t4`).
    pub model: String,
    /// Architecture compiled for.
    pub arch: Arch,
    /// Modeled total cycles of the greedy-mapped program.
    pub greedy_cycles: u64,
    /// Modeled total cycles of the beam-mapped program.
    pub beam_cycles: u64,
}

impl SearchRow {
    /// `true` when the beam strictly reduced modeled cycles.
    pub fn improved(&self) -> bool {
        self.beam_cycles < self.greedy_cycles
    }
}

/// One calibrated cost-table override (a row of the overlay report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayDelta {
    /// Architecture the override applies to.
    pub arch: Arch,
    /// Instruction name.
    pub name: String,
    /// `.isa` table cost.
    pub table_cost: u32,
    /// Calibrated per-issue cost.
    pub calibrated_cost: u32,
}

/// Outcome of the semantic gate over seeded fuzz cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateSummary {
    /// Seeded fuzz models compiled.
    pub cases: usize,
    /// Beam-mapped programs checked (`cases × arches`).
    pub programs: usize,
    /// Programs `hcg_verify` proved equivalent to their model.
    pub proved: usize,
    /// Programs whose VM outputs diverged from the reference.
    pub equivalence_failures: usize,
}

impl GateSummary {
    /// `true` when every program proved and none diverged.
    pub fn all_proved(&self) -> bool {
        self.proved == self.programs && self.equivalence_failures == 0
    }
}

/// The full `repro -- search` report.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Beam width used for the search side.
    pub beam_width: usize,
    /// Whether profile-guided calibration ran.
    pub calibrated: bool,
    /// Fused-op latency of the calibration platform (0 when uncalibrated).
    pub fused_latency: u64,
    /// Calibrated overrides that differ from the table, sorted by
    /// (arch, name).
    pub overlay: Vec<OverlayDelta>,
    /// One row per benchmark `model × arch`.
    pub rows: Vec<SearchRow>,
    /// Semantic-gate outcome.
    pub gate: GateSummary,
}

impl SearchReport {
    /// `model/arch` labels of rows the beam strictly improved.
    pub fn strictly_better(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter(|r| r.improved())
            .map(|r| format!("{}/{}", r.model, r.arch))
            .collect()
    }

    /// Distinct model names the beam strictly improved.
    pub fn improved_models(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .rows
            .iter()
            .filter(|r| r.improved())
            .map(|r| r.model.as_str())
            .collect();
        out.dedup();
        out
    }
}

fn hcg_with(mapping: MappingStrategy, overlay: Option<CostOverlay>) -> HcgGen {
    HcgGen::with_options(HcgOptions {
        mapping,
        cost_overlay: overlay,
        ..HcgOptions::default()
    })
}

/// Profile every greedy-mapped benchmark on the calibration platform and
/// derive the cost overlay — step 1–2 of the loop. Ingestion goes through
/// the profiles' JSON rendering, exercising the same path a user feeding
/// committed `BENCH_profile.json` files back in would take.
fn calibrate_from_greedy(models: &[hcg_model::Model], fused_latency: u64) -> CostOverlay {
    let lib = CodeLibrary::new();
    let greedy = hcg_with(MappingStrategy::Greedy, None);
    let mut calibrator = CostCalibrator::new();
    for model in models {
        for arch in FLEET_ARCHES {
            let prog = greedy
                .generate(model, arch)
                .unwrap_or_else(|e| panic!("greedy {} on {arch}: {e}", model.name));
            let cm = CostModel::new(arch, Compiler::GccLike).with_fused_latency(fused_latency);
            let json = profile(&prog, &lib, &cm).to_json();
            calibrator
                .ingest_profile_json(&json)
                .unwrap_or_else(|e| panic!("calibration ingest for {}: {e}", model.name));
        }
    }
    calibrator.overlay()
}

/// Run the search experiment: compare greedy vs beam modeled cycles on
/// every paper benchmark × evaluation arch, then gate `cases` seeded fuzz
/// models' beam-mapped programs semantically.
pub fn run_search(beam_width: usize, calibrate: bool, seed: u64, cases: usize) -> SearchReport {
    let _span = hcg_obs::span("bench", "search");
    let width = beam_width.max(2);
    let models = library::paper_benchmarks();
    let fused_latency = if calibrate {
        CALIBRATION_FUSED_LATENCY
    } else {
        0
    };
    let overlay = calibrate.then(|| calibrate_from_greedy(&models, fused_latency));

    let mut deltas = Vec::new();
    if let Some(ov) = &overlay {
        for arch in FLEET_ARCHES {
            let set = sets::builtin(arch);
            for (name, table_cost, calibrated_cost) in ov.deltas(&set) {
                deltas.push(OverlayDelta {
                    arch,
                    name,
                    table_cost,
                    calibrated_cost,
                });
            }
        }
    }

    // Evaluation platform: the same model the calibration observed, so the
    // comparison prices greedy's fusions at their observed latency.
    let eval =
        |arch: Arch| CostModel::new(arch, Compiler::GccLike).with_fused_latency(fused_latency);
    let lib = CodeLibrary::new();
    let greedy_gen = hcg_with(MappingStrategy::Greedy, None);
    let beam_gen = hcg_with(MappingStrategy::Beam { width }, overlay.clone());
    let mut rows = Vec::new();
    for model in &models {
        for arch in FLEET_ARCHES {
            let gp = greedy_gen
                .generate(model, arch)
                .unwrap_or_else(|e| panic!("greedy {} on {arch}: {e}", model.name));
            let bp = beam_gen
                .generate(model, arch)
                .unwrap_or_else(|e| panic!("beam {} on {arch}: {e}", model.name));
            rows.push(SearchRow {
                model: model.name.clone(),
                arch,
                greedy_cycles: eval(arch).cycles(&gp, &lib),
                beam_cycles: eval(arch).cycles(&bp, &lib),
            });
        }
    }

    let gate = run_gate(&beam_gen, seed, cases);
    SearchReport {
        beam_width: width,
        calibrated: calibrate,
        fused_latency,
        overlay: deltas,
        rows,
        gate,
    }
}

/// The semantic gate: every beam-mapped program of `cases` seeded fuzz
/// models must prove under `hcg_verify` *and* agree with the model
/// reference on the VM over seeded inputs.
fn run_gate(beam_gen: &HcgGen, seed: u64, cases: usize) -> GateSummary {
    let lib = CodeLibrary::new();
    let (mut programs, mut proved, mut equivalence_failures) = (0usize, 0usize, 0usize);
    for i in 0..cases {
        let model = generate_model(case_seed(seed, i), &GenConfig::default());
        for arch in FLEET_ARCHES {
            let prog = beam_gen
                .generate(&model, arch)
                .unwrap_or_else(|e| panic!("beam gate case {i} on {arch}: {e}"));
            programs += 1;
            match hcg_verify::verify_program(&model, &prog) {
                Ok(outcome) if outcome.equivalent => proved += 1,
                _ => {}
            }
            if !runs_equivalent(&model, &prog, &lib, case_seed(seed, i)) {
                equivalence_failures += 1;
            }
        }
    }
    GateSummary {
        cases,
        programs,
        proved,
        equivalence_failures,
    }
}

/// Execute `prog` against the golden reference for [`GATE_STEPS`] steps of
/// seeded inputs; integers must agree exactly, floats to 1e-9 relative.
fn runs_equivalent(
    model: &hcg_model::Model,
    prog: &hcg_vm::Program,
    lib: &CodeLibrary,
    seed: u64,
) -> bool {
    let Ok(mut reference) = Reference::new(model) else {
        return false;
    };
    let mut machine = Machine::new(prog, lib);
    let Ok(types) = model.infer_types() else {
        return false;
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..GATE_STEPS {
        let inputs = random_inputs(model, &mut rng);
        let Ok(expected) = reference.step(&inputs) else {
            return false;
        };
        for (name, value) in &inputs {
            if machine.set_input(name, value).is_err() {
                return false;
            }
        }
        if machine.step().is_err() {
            return false;
        }
        for (name, want) in &expected {
            let Ok(got) = machine.read_buffer(name) else {
                return false;
            };
            let is_float = model
                .actor_by_name(name)
                .map(|a| {
                    types
                        .inputs_of(model, a.id)
                        .first()
                        .map(|t| t.dtype.is_float())
                        .unwrap_or(true)
                })
                .unwrap_or(true);
            let scale = want.as_f64().iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
            let diff = got.max_abs_diff(want) / scale;
            let tol = if is_float { 1e-9 } else { 0.0 };
            if diff > tol || !diff.is_finite() {
                return false;
            }
        }
    }
    true
}

/// Deterministic JSON rendering of a search report.
pub fn search_json(report: &SearchReport) -> String {
    let overlay: Vec<String> = report
        .overlay
        .iter()
        .map(|d| {
            format!(
                "{{\"arch\": \"{}\", \"name\": \"{}\", \"table_cost\": {}, \"calibrated_cost\": {}}}",
                d.arch, d.name, d.table_cost, d.calibrated_cost
            )
        })
        .collect();
    let rows: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"model\": \"{}\", \"arch\": \"{}\", \"greedy_cycles\": {}, \"beam_cycles\": {}, \"improved\": {}}}",
                r.model,
                r.arch,
                r.greedy_cycles,
                r.beam_cycles,
                r.improved()
            )
        })
        .collect();
    let better: Vec<String> = report
        .strictly_better()
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect();
    format!(
        "{{\n  \"experiment\": \"search\",\n  \"beam_width\": {},\n  \"calibrated\": {},\n  \"fused_latency\": {},\n  \"overlay\": [{}],\n  \"rows\": [{}],\n  \"beam_strictly_better\": [{}],\n  \"gate\": {{\"cases\": {}, \"programs\": {}, \"proved\": {}, \"equivalence_failures\": {}, \"all_proved\": {}}}\n}}\n",
        report.beam_width,
        report.calibrated,
        report.fused_latency,
        overlay.join(", "),
        rows.join(", "),
        better.join(", "),
        report.gate.cases,
        report.gate.programs,
        report.gate.proved,
        report.gate.equivalence_failures,
        report.gate.all_proved()
    )
}

/// Render the report as the repro binary's text table.
pub fn render_search(report: &SearchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "search: beam width {} ({}), fused latency {}",
        report.beam_width,
        if report.calibrated {
            "profile-calibrated costs"
        } else {
            "builtin costs"
        },
        report.fused_latency
    );
    for d in &report.overlay {
        let _ = writeln!(
            out,
            "  calibrated {:>18} on {}: {} -> {}",
            d.name, d.arch, d.table_cost, d.calibrated_cost
        );
    }
    for r in &report.rows {
        let _ = writeln!(
            out,
            "  {:>14} on {:<7}  greedy {:>8} cy  beam {:>8} cy  {}",
            r.model,
            r.arch.to_string(),
            r.greedy_cycles,
            r.beam_cycles,
            if r.improved() { "improved" } else { "tied" }
        );
    }
    let _ = writeln!(
        out,
        "  gate: {} cases, {} programs, {} proved, {} equivalence failures ({})",
        report.gate.cases,
        report.gate.programs,
        report.gate.proved,
        report.gate.equivalence_failures,
        if report.gate.all_proved() {
            "all proved"
        } else {
            "FAILED"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncalibrated_search_ties_greedy_everywhere() {
        let r = run_search(4, false, 0, 2);
        assert_eq!(r.fused_latency, 0);
        assert!(r.overlay.is_empty());
        assert!(r.strictly_better().is_empty(), "{:?}", r.strictly_better());
        assert!(r
            .rows
            .iter()
            .all(|row| row.beam_cycles == row.greedy_cycles));
        assert!(r.gate.all_proved(), "{:?}", r.gate);
    }

    #[test]
    fn calibrated_search_strictly_improves_fused_models() {
        let r = run_search(4, true, 0, 2);
        assert!(!r.overlay.is_empty(), "calibration found no overrides");
        // Beam never loses: seeded with the greedy plan, strict
        // improvement only.
        assert!(r
            .rows
            .iter()
            .all(|row| row.beam_cycles <= row.greedy_cycles));
        let improved = r.improved_models();
        assert!(
            improved.contains(&"FIR_1024t4"),
            "FIR must improve: {improved:?}"
        );
        assert!(
            improved
                .iter()
                .any(|m| m.starts_with("LowPass") || m.starts_with("HighPass")),
            "a filter model must improve: {improved:?}"
        );
        assert!(r.gate.all_proved(), "{:?}", r.gate);
    }

    #[test]
    fn search_json_is_stable_and_valid() {
        let a = search_json(&run_search(4, true, 0, 1));
        let b = search_json(&run_search(4, true, 0, 1));
        assert_eq!(a, b);
        assert!(hcg_obs::json::validate(&a).is_ok(), "{a}");
        assert!(a.contains("\"beam_strictly_better\""));
    }
}
