//! Incremental-recompilation benchmark: recompile-after-edit vs scratch.
//!
//! For every bundled paper benchmark this drives an [`EditSession`]
//! through a seeded sequence of single-actor parameter edits and, after
//! each edit, compiles the model both incrementally and from scratch for
//! every fleet generator × architecture. Byte-identity is asserted on
//! every pair; the row records the two wall-clock totals, so the reported
//! speedup is exactly "how much faster does an edit recompile because of
//! dirty-region splicing and per-actor artifact reuse".
//!
//! Fresh generators are constructed for every compile on *both* sides, so
//! autotuner history never contaminates the comparison.

use crate::experiments::{benchmark_models, short_name};
use crate::fleet::{generator_named, FLEET_ARCHES, FLEET_GENERATORS};
use hcg_core::emit::to_c_source;
use hcg_core::EditSession;
use hcg_model::delta::EditOp;
use hcg_model::{ActorKind, Model, ModelDelta, Param};
use std::time::{Duration, Instant};

/// Tunables of one incremental-bench run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalBenchConfig {
    /// Edits applied per model.
    pub edits: usize,
    /// Selects which parameter actor each edit perturbs.
    pub seed: u64,
}

impl Default for IncrementalBenchConfig {
    fn default() -> Self {
        IncrementalBenchConfig { edits: 50, seed: 0 }
    }
}

/// One model's measurements.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Model short name.
    pub model: String,
    /// Edits actually applied (0 when a model has no editable parameter).
    pub edits: usize,
    /// Total wall-clock of every incremental compile after each edit.
    pub incremental: Duration,
    /// Total wall-clock of the matching from-scratch compiles.
    pub scratch: Duration,
    /// Whether every incremental/scratch pair was byte-identical.
    pub identical: bool,
    /// Regions admitted (effects clean of the dirty set) across the run.
    pub regions_admitted: u64,
    /// Regions whose effects intersected the dirty set.
    pub regions_invalidated: u64,
    /// Region plans actually re-mapped and spliced.
    pub plans_spliced: u64,
}

impl IncrementalRow {
    /// Scratch time over incremental time.
    pub fn speedup(&self) -> f64 {
        self.scratch.as_secs_f64() / self.incremental.as_secs_f64().max(1e-12)
    }
}

/// A single-actor parameter edit against `model`, chosen by `pick` among
/// the model's editable parameter actors (`Gain`, `Saturate`, `Shr`/`Shl`,
/// `Constant`). The perturbation derives from the *current* value, so
/// successive edits of the same actor keep changing the model. Returns
/// `None` when the model has no editable parameter actor.
pub fn param_edit(model: &Model, pick: u64) -> Option<ModelDelta> {
    let candidates: Vec<&hcg_model::Actor> = model
        .actors
        .iter()
        .filter(|a| {
            matches!(
                a.kind,
                ActorKind::Gain
                    | ActorKind::Saturate
                    | ActorKind::Shr
                    | ActorKind::Shl
                    | ActorKind::Constant
            )
        })
        .collect();
    if candidates.is_empty() {
        // No parameter actor (e.g. the DCT benchmark is inport → intensive
        // actor → outport): re-assert an inport's declared type. The value
        // is unchanged, but the edit still dirties the actor's downstream
        // closure, so the recompile path is exercised all the same.
        let inport = model.actors.iter().find(|a| a.kind == ActorKind::Inport)?;
        let ty = inport.param("type")?.clone();
        return Some(ModelDelta::single(EditOp::SetParam {
            name: inport.name.clone(),
            param: "type".to_owned(),
            value: ty,
        }));
    }
    let a = candidates.get(pick as usize % candidates.len())?;
    let (param, value) = match a.kind {
        ActorKind::Gain => {
            let cur = match a.param("gain") {
                Some(Param::Float(f)) => *f,
                _ => 1.0,
            };
            ("gain", Param::Float(cur + 0.25))
        }
        ActorKind::Saturate => {
            let cur = match a.param("min") {
                Some(Param::Float(f)) => *f,
                _ => -1.0,
            };
            ("min", Param::Float(cur - 0.25))
        }
        ActorKind::Shr | ActorKind::Shl => {
            let cur = match a.param("amount") {
                Some(Param::Int(i)) => *i,
                _ => 0,
            };
            ("amount", Param::Int((cur + 1) % 4))
        }
        ActorKind::Constant => {
            let value = match a.param("value") {
                Some(Param::Float(f)) => Param::Float(f + 1.0),
                Some(Param::FloatVec(v)) => Param::FloatVec(v.iter().map(|x| x + 1.0).collect()),
                _ => return None,
            };
            ("value", value)
        }
        _ => unreachable!("candidate pool is filtered by kind"),
    };
    Some(ModelDelta::single(EditOp::SetParam {
        name: a.name.clone(),
        param: param.to_owned(),
        value,
    }))
}

/// Run the benchmark over every bundled paper model.
///
/// # Panics
///
/// Panics when a compile fails — the bundled models are valid and stay
/// valid under parameter edits, so a failure is a session bug.
pub fn run_incremental_bench(cfg: &IncrementalBenchConfig) -> Vec<IncrementalRow> {
    benchmark_models()
        .into_iter()
        .map(|m| bench_model(m, cfg))
        .collect()
}

fn bench_model(model: Model, cfg: &IncrementalBenchConfig) -> IncrementalRow {
    let name = short_name(&model);
    let _span = hcg_obs::span_with("incremental", || format!("bench/{name}"));
    let mut session = EditSession::new(model);
    // Warm the session once so the measured loop isolates the *edit*
    // recompile cost (a cold first compile is identical to scratch by
    // definition and would only dilute both sides equally).
    for g in FLEET_GENERATORS {
        for arch in FLEET_ARCHES {
            session
                .generate(generator_named(g).as_ref(), arch)
                .unwrap_or_else(|e| panic!("{name}: warmup {g} on {arch}: {e}"));
        }
    }

    let mut incremental = Duration::ZERO;
    let mut scratch = Duration::ZERO;
    let mut identical = true;
    let mut edits = 0usize;
    for i in 0..cfg.edits {
        let Some(delta) = param_edit(session.model(), cfg.seed.wrapping_add(i as u64)) else {
            break;
        };
        session
            .apply_delta(&delta)
            .unwrap_or_else(|e| panic!("{name}: edit {i}: {e}"));
        edits += 1;
        for g in FLEET_GENERATORS {
            for arch in FLEET_ARCHES {
                let t0 = Instant::now();
                let inc = session
                    .generate(generator_named(g).as_ref(), arch)
                    .unwrap_or_else(|e| panic!("{name}: incremental {g} on {arch}: {e}"));
                incremental += t0.elapsed();

                let t0 = Instant::now();
                let fresh = generator_named(g)
                    .generate(session.model(), arch)
                    .unwrap_or_else(|e| panic!("{name}: scratch {g} on {arch}: {e}"));
                scratch += t0.elapsed();

                identical &= to_c_source(&inc) == to_c_source(&fresh);
            }
        }
    }
    let stats = session.stats();
    IncrementalRow {
        model: name,
        edits,
        incremental,
        scratch,
        identical,
        regions_admitted: stats.regions_admitted,
        regions_invalidated: stats.regions_invalidated,
        plans_spliced: stats.plans_spliced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_model_has_a_param_edit() {
        for m in benchmark_models() {
            let d = param_edit(&m, 0);
            assert!(d.is_some(), "{} has no editable parameter", m.name);
            let next = d.unwrap().apply(&m).unwrap();
            assert!(next.front_end().is_ok(), "{}: edit broke the model", m.name);
            let has_param_actor = m.actors.iter().any(|a| {
                matches!(
                    a.kind,
                    ActorKind::Gain
                        | ActorKind::Saturate
                        | ActorKind::Shr
                        | ActorKind::Shl
                        | ActorKind::Constant
                )
            });
            if has_param_actor {
                assert_ne!(next, m, "{}: edit was a no-op", m.name);
            } else {
                // The fallback re-asserts an inport type: value-preserving
                // by design, but still a valid dirtying edit.
                assert_eq!(next, m, "{}: fallback edit should preserve value", m.name);
            }
        }
    }

    #[test]
    fn small_bench_is_identical_and_counts_edits() {
        let cfg = IncrementalBenchConfig { edits: 2, seed: 0 };
        let rows = run_incremental_bench(&cfg);
        assert_eq!(rows.len(), benchmark_models().len());
        for r in &rows {
            assert!(
                r.identical,
                "{}: incremental differed from scratch",
                r.model
            );
            assert_eq!(r.edits, 2, "{}", r.model);
        }
    }
}
