//! The §4.1 correctness check: all three generators and the golden
//! reference must compute identical results on every benchmark model.

use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
use hcg_core::{CodeGenerator, HcgGen, Reference};
use hcg_isa::Arch;
use hcg_kernels::CodeLibrary;
use hcg_model::{ActorKind, Model, Tensor};
use hcg_vm::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Result of a consistency run.
#[derive(Debug, Clone, PartialEq)]
pub struct Consistency {
    /// Model name.
    pub model: String,
    /// Target architecture.
    pub arch: Arch,
    /// Worst absolute difference of any generator output against the golden
    /// reference, over all steps and outports.
    pub max_diff: f64,
}

/// Random inputs for one step of a model, keyed by inport name.
pub fn random_inputs(model: &Model, rng: &mut StdRng) -> BTreeMap<String, Tensor> {
    let types = model.infer_types().expect("benchmark models are valid");
    let mut out = BTreeMap::new();
    for a in &model.actors {
        if a.kind != ActorKind::Inport {
            continue;
        }
        let ty = types.output(a.id, 0);
        let t = if ty.dtype.is_float() {
            let data: Vec<f64> = (0..ty.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Tensor::from_f64(ty, data).expect("sized")
        } else {
            let data: Vec<i64> = (0..ty.len()).map(|_| rng.gen_range(-100..100)).collect();
            Tensor::from_i64(ty, data).expect("sized")
        };
        out.insert(a.name.clone(), t);
    }
    out
}

/// Execute a model for `steps` steps through every generator on `arch` and
/// through the golden reference, comparing every outport value.
///
/// Float comparisons tolerate the difference between intensive-kernel
/// algorithms (e.g. radix-4 vs naive DFT accumulate rounding differently);
/// integer paths must agree exactly.
///
/// # Panics
///
/// Panics when generation or execution fails — benchmark models must not
/// fail.
pub fn check_consistency(model: &Model, arch: Arch, steps: usize, seed: u64) -> Consistency {
    let lib = CodeLibrary::new();
    let generators: Vec<Box<dyn CodeGenerator>> = vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(HcgGen::new()),
    ];
    let programs: Vec<_> = generators
        .iter()
        .map(|g| {
            g.generate(model, arch)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", g.name(), model.name))
        })
        .collect();
    let mut machines: Vec<Machine<'_>> = programs.iter().map(|p| Machine::new(p, &lib)).collect();
    let mut reference = Reference::new(model).expect("valid model");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut max_diff = 0.0f64;
    for _ in 0..steps {
        let inputs = random_inputs(model, &mut rng);
        let expected = reference.step(&inputs).expect("reference executes");
        for m in &mut machines {
            for (name, value) in &inputs {
                m.set_input(name, value).expect("input buffers exist");
            }
            m.step().expect("program executes");
            for (name, want) in &expected {
                let got = m.read_buffer(name).expect("output buffer exists");
                let scale = want.as_f64().iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
                let diff = got.max_abs_diff(want) / scale;
                max_diff = max_diff.max(diff);
            }
        }
    }
    Consistency {
        model: model.name.clone(),
        arch,
        max_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::library;

    #[test]
    fn fig4_exact_agreement() {
        let c = check_consistency(&library::fig4_model(), Arch::Neon128, 4, 7);
        assert_eq!(c.max_diff, 0.0);
    }

    #[test]
    fn integer_fir_exact_agreement_all_archs() {
        for arch in Arch::ALL {
            let c = check_consistency(&library::fir_model(64, 4), arch, 3, 11);
            assert_eq!(c.max_diff, 0.0, "{arch}");
        }
    }

    #[test]
    fn float_benchmarks_agree_within_tolerance() {
        for m in [
            library::fft_model(256),
            library::dct_model(128),
            library::conv_model(128, 16),
            library::highpass_model(64),
            library::lowpass_model(64),
        ] {
            let c = check_consistency(&m, Arch::Neon128, 2, 3);
            assert!(c.max_diff < 1e-4, "{}: {}", m.name, c.max_diff);
        }
    }

    #[test]
    fn random_models_agree_exactly_many_seeds() {
        for seed in 1..25 {
            let m = library::random_batch_model(seed, 19, 8);
            for arch in [Arch::Neon128, Arch::Avx256] {
                let c = check_consistency(&m, arch, 2, seed);
                // Integer models must be bit-exact; float models within fp
                // reassociation tolerance.
                assert!(c.max_diff < 1e-5, "seed {seed} on {arch}: {}", c.max_diff);
            }
        }
    }
}
