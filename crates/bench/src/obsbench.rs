//! Observability overhead bench (`repro -- obs-bench`).
//!
//! Answers "what does instrumentation cost?" by replaying the identical
//! Zipf-skewed serve workload (see [`crate::serve`]) against daemons with
//! telemetry layered on one feature at a time:
//!
//! 1. `off` — histograms disabled, no access log, tracing off (baseline);
//! 2. `histograms` — the production default: latency/size histograms on;
//! 3. `histograms+access-log` — plus one JSON line per request to disk;
//! 4. `histograms+access-log+tracing` — plus span capture on every thread.
//!
//! Layers are measured **interleaved**, `repeats` rounds, after one
//! untimed warm-up run — so every layer samples the same machine
//! conditions (frequency scaling, cache state, allocator warmth)
//! instead of the first layer winning by going first. Within a round
//! the layer order alternates forward/reverse between rounds, so any
//! monotone drift across a round (a neighbour stealing the core, a
//! thermal ramp) hits each layer's early and late slots equally and
//! cancels over pairs of rounds. The wall-clock headline is the
//! **median** of the per-round paired off-vs-histograms deltas, and
//! the table reports each layer's median round.
//!
//! The **gate** does not bind the wall-clock delta. Every request is a
//! fresh TCP connection bounced across client, accept and worker
//! threads, so on small shared boxes the round-trip is dominated by
//! scheduler behaviour: an A/A comparison (two *identical* layers run
//! through the same paired protocol) shows paired deltas swinging
//! ±10–25% — far too coarse to resolve a 3% budget, in either
//! direction. What the gate binds instead is measurable to well under
//! 1%: the four histogram `record` calls the server makes per request
//! are timed directly in a tight loop ([`record_cost_ns_per_request`],
//! minimum over batches, so preemption can only inflate discarded
//! samples), and that cost is expressed as a fraction of the
//! instrumented run's per-request service time. Added per-request work
//! divided by service time *is* the throughput loss at saturation, so
//! the gate still speaks the budget's language — histograms are
//! always-on in production, so they must be near-free, below
//! [`GATE_PCT`]% of a request. The raw wall-clock deltas stay in the
//! report (one per round) so a reader can check the noise for
//! themselves. The gate only applies to runs of at least
//! [`GATE_MIN_REQUESTS`] requests; shorter smokes have too few
//! requests to estimate even the service time honestly.

use crate::serve::{run_serve_bench, ServeBenchConfig, ServeBenchReport};
use hcg_obs::Histogram;
use std::path::PathBuf;
use std::time::Instant;

/// Maximum tolerated histogram-layer throughput loss, percent.
pub const GATE_PCT: f64 = 3.0;

/// Replays shorter than this skip the overhead gate (noise dominates).
pub const GATE_MIN_REQUESTS: usize = 1000;

/// Overhead-bench configuration: the shared workload shape plus how many
/// times each layer repeats.
#[derive(Debug, Clone)]
pub struct ObsBenchConfig {
    /// Total requests replayed per run.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Synthesized models in the corpus.
    pub corpus_size: usize,
    /// Base seed for corpus synthesis and request sampling.
    pub seed: u64,
    /// Daemon worker jobs (0 = all cores).
    pub workers: usize,
    /// Interleaved measurement rounds; the table reports each layer's
    /// median round and the gate uses the median of the per-round
    /// paired off-vs-histograms deltas.
    pub repeats: usize,
    /// Where the access-log layers write their JSONL output.
    pub access_log: PathBuf,
}

impl Default for ObsBenchConfig {
    fn default() -> Self {
        ObsBenchConfig {
            requests: 4000,
            clients: 8,
            corpus_size: 500,
            seed: 0,
            workers: 0,
            repeats: 5,
            access_log: PathBuf::from("target/obs-bench-access.jsonl"),
        }
    }
}

/// One telemetry layer's median-round result.
#[derive(Debug, Clone)]
pub struct ObsLayerResult {
    /// Layer name (`off`, `histograms`, ...).
    pub layer: &'static str,
    /// Requests-per-second of the layer's median round (by throughput).
    pub requests_per_sec: f64,
    /// Median end-to-end latency (from the median round), microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency (from the median round), microseconds.
    pub p99_us: u64,
    /// Cache hit rate of the median round (sanity: same across layers).
    pub hit_rate: f64,
}

/// The full overhead report.
#[derive(Debug, Clone)]
pub struct ObsBenchReport {
    /// The configuration that produced this report.
    pub config: ObsBenchConfig,
    /// Per-layer results, in layering order (baseline first).
    pub layers: Vec<ObsLayerResult>,
    /// Wall-clock histogram-layer throughput delta versus baseline,
    /// percent: the median of the per-round paired deltas (negative =
    /// the instrumented runs happened to be faster). Reported for
    /// transparency; scheduler noise dominates it on shared boxes, so
    /// the gate binds [`ObsBenchReport::direct_overhead_pct`] instead.
    pub histogram_overhead_pct: f64,
    /// Every per-round paired off-vs-histograms delta, percent, in
    /// round order — the spread is the measurement's noise floor.
    pub paired_deltas_pct: Vec<f64>,
    /// Directly measured cost of the per-request histogram `record`
    /// calls, nanoseconds (minimum over tight-loop batches).
    pub record_cost_ns_per_request: f64,
    /// That cost as a percentage of the instrumented run's per-request
    /// service time — the throughput loss at saturation. This is what
    /// the gate binds.
    pub direct_overhead_pct: f64,
    /// The gate threshold this report was judged against.
    pub gate_pct: f64,
    /// Whether the gate applied (`requests >= GATE_MIN_REQUESTS`).
    pub gate_applied: bool,
    /// Lines the access-log layers wrote (one per completed request).
    pub access_log_lines: usize,
}

/// One measured run of a layer; every run must stay byte-identical to
/// direct compiles (instrumentation must never change results). Tracing
/// is a process-global flag, so it is flipped around the run and the
/// captured spans are dropped immediately.
fn run_layer(config: &ServeBenchConfig, tracing: bool) -> ServeBenchReport {
    let was_tracing = hcg_obs::tracing_enabled();
    if tracing {
        hcg_obs::set_tracing(true);
    }
    let report = run_serve_bench(config);
    hcg_obs::set_tracing(was_tracing);
    if tracing {
        let _ = hcg_obs::take_events();
    }
    assert!(
        report.identical,
        "telemetry layer changed compile output — observability must be passive"
    );
    report
}

/// Time the per-request histogram work directly: the same four `record`
/// calls `handle_connection` makes (queue wait, request bytes, response
/// bytes, end-to-end latency), swept over values that land in different
/// buckets. Returns nanoseconds per request-equivalent, minimum over
/// several batches — on a busy box preemption can only inflate a batch,
/// so the minimum is the steady-state cost.
pub fn record_cost_ns_per_request() -> f64 {
    const BATCH: u64 = 200_000;
    let queue = Histogram::new();
    let req_bytes = Histogram::new();
    let resp_bytes = Histogram::new();
    let latency = Histogram::new();
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let t0 = Instant::now();
        for i in 0..BATCH {
            let i = std::hint::black_box(i);
            queue.record(i & 0x3ff);
            req_bytes.record(1_024 + (i & 0xffff));
            resp_bytes.record(8_192 + (i & 0xffff));
            latency.record(64 + (i & 0x1fff));
        }
        let ns = t0.elapsed().as_nanos() as f64 / BATCH as f64;
        best = best.min(ns);
    }
    // Keep the histograms observable so the record loops can't be
    // discarded as dead stores.
    std::hint::black_box((
        queue.snapshot().count,
        req_bytes.snapshot().count,
        resp_bytes.snapshot().count,
        latency.snapshot().count,
    ));
    best
}

fn layer_result(name: &'static str, report: &ServeBenchReport) -> ObsLayerResult {
    ObsLayerResult {
        layer: name,
        requests_per_sec: report.requests_per_sec(),
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        hit_rate: report.hit_rate(),
    }
}

/// Run all four layers and compute the histogram overhead.
///
/// # Panics
///
/// Panics when any layer's responses diverge from direct compiles, when
/// the access-log layers write nothing, or when the histogram overhead
/// exceeds [`GATE_PCT`] on a gated (≥ [`GATE_MIN_REQUESTS`]-request) run.
pub fn run_obs_bench(config: &ObsBenchConfig) -> ObsBenchReport {
    let base = ServeBenchConfig {
        requests: config.requests,
        clients: config.clients,
        corpus_size: config.corpus_size,
        seed: config.seed,
        workers: config.workers,
        record_histograms: false,
        access_log: None,
    };
    let _ = std::fs::remove_file(&config.access_log);
    if let Some(parent) = config.access_log.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }

    let logged_cfg = ServeBenchConfig {
        record_histograms: true,
        access_log: Some(config.access_log.clone()),
        ..base.clone()
    };
    let layers: [(&'static str, ServeBenchConfig, bool); 4] = [
        ("off", base.clone(), false),
        (
            "histograms",
            ServeBenchConfig {
                record_histograms: true,
                ..base.clone()
            },
            false,
        ),
        ("histograms+access-log", logged_cfg.clone(), false),
        ("histograms+access-log+tracing", logged_cfg, true),
    ];

    // One untimed warm-up, then interleaved rounds. The order inside a
    // round alternates forward/reverse so monotone within-round drift
    // (a busy neighbour, a thermal ramp) cancels across round pairs
    // instead of systematically taxing whichever layer runs last.
    let _ = run_layer(&base, false);
    let repeats = config.repeats.max(1);
    let mut runs: Vec<Vec<ServeBenchReport>> = vec![Vec::new(); layers.len()];
    for round in 0..repeats {
        let order: Vec<usize> = if round % 2 == 0 {
            (0..layers.len()).collect()
        } else {
            (0..layers.len()).rev().collect()
        };
        for i in order {
            let (_, layer_cfg, tracing) = &layers[i];
            let report = run_layer(layer_cfg, *tracing);
            runs[i].push(report);
        }
    }

    // Wall-clock statistic: pair off and histograms *within* each round
    // (they ran seconds apart under the same machine conditions), then
    // take the median delta so one scheduler-starved round can't decide
    // it. Kept in the report as context, not gated (see module docs).
    let paired_deltas_pct: Vec<f64> = (0..repeats)
        .map(|r| {
            let off = runs[0][r].requests_per_sec();
            let hist = runs[1][r].requests_per_sec();
            (off - hist) / off * 100.0
        })
        .collect();
    let mut sorted = paired_deltas_pct.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("deltas are finite"));
    let wallclock_delta = sorted[sorted.len() / 2];

    let median_round = |mut rounds: Vec<ServeBenchReport>| {
        rounds.sort_by(|a, b| {
            a.requests_per_sec()
                .partial_cmp(&b.requests_per_sec())
                .expect("throughput is finite")
        });
        let mid = rounds.len() / 2;
        rounds.swap_remove(mid)
    };
    let [off, hist, logged, traced] = runs
        .into_iter()
        .map(median_round)
        .collect::<Vec<_>>()
        .try_into()
        .expect("four layers");

    let access_log_lines = std::fs::read_to_string(&config.access_log)
        .map(|s| s.lines().count())
        .unwrap_or(0);
    assert!(
        access_log_lines > 0,
        "access-log layers completed but {} is empty",
        config.access_log.display()
    );

    // Gate statistic: the directly measured per-request record cost as
    // a share of the instrumented run's per-request service time —
    // added work over service time is throughput loss at saturation.
    let record_cost_ns = record_cost_ns_per_request();
    let service_time_ns = 1e9 / hist.requests_per_sec().max(1e-9);
    let direct_overhead_pct = record_cost_ns / service_time_ns * 100.0;

    let gate_applied = config.requests >= GATE_MIN_REQUESTS;
    if gate_applied {
        assert!(
            direct_overhead_pct < GATE_PCT,
            "histogram overhead {direct_overhead_pct:.3}% exceeds the {GATE_PCT}% budget \
             ({record_cost_ns:.0} ns of record calls per {service_time_ns:.0} ns request)",
        );
    }

    ObsBenchReport {
        config: config.clone(),
        layers: vec![
            layer_result("off", &off),
            layer_result("histograms", &hist),
            layer_result("histograms+access-log", &logged),
            layer_result("histograms+access-log+tracing", &traced),
        ],
        histogram_overhead_pct: wallclock_delta,
        paired_deltas_pct,
        record_cost_ns_per_request: record_cost_ns,
        direct_overhead_pct,
        gate_pct: GATE_PCT,
        gate_applied,
        access_log_lines,
    }
}

/// Render the report for the transcript.
pub fn render_obs_bench(r: &ObsBenchReport) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "{} requests x {} clients over a {}-model corpus, median of {} interleaved rounds",
        r.config.requests, r.config.clients, r.config.corpus_size, r.config.repeats
    ));
    line(format!(
        "{:<32} {:>12} {:>10} {:>10} {:>9}",
        "layer", "requests/s", "p50 us", "p99 us", "hit rate"
    ));
    for l in &r.layers {
        line(format!(
            "{:<32} {:>12.0} {:>10} {:>10} {:>8.1}%",
            l.layer,
            l.requests_per_sec,
            l.p50_us,
            l.p99_us,
            l.hit_rate * 100.0
        ));
    }
    line(format!(
        "wall-clock delta vs off: {:.2}% median of paired rounds [{}] (scheduler noise, not gated)",
        r.histogram_overhead_pct,
        r.paired_deltas_pct
            .iter()
            .map(|d| format!("{d:+.1}%"))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    line(format!(
        "histogram record cost: {:.0} ns/request = {:.3}% of a request (budget {:.1}%, gate {})",
        r.record_cost_ns_per_request,
        r.direct_overhead_pct,
        r.gate_pct,
        if r.gate_applied {
            "applied"
        } else {
            "skipped: short run"
        }
    ));
    line(format!(
        "access log: {} lines at {}",
        r.access_log_lines,
        r.config.access_log.display()
    ));
    out
}

/// The report as the committed `BENCH_obs.json` schema.
pub fn obs_bench_json(r: &ObsBenchReport) -> String {
    let layers: Vec<String> = r
        .layers
        .iter()
        .map(|l| {
            format!(
                "    {{\"layer\": \"{}\", \"requests_per_sec\": {:.1}, \"p50_us\": {}, \
                 \"p99_us\": {}, \"hit_rate\": {:.4}}}",
                l.layer, l.requests_per_sec, l.p50_us, l.p99_us, l.hit_rate
            )
        })
        .collect();
    let deltas: Vec<String> = r
        .paired_deltas_pct
        .iter()
        .map(|d| format!("{d:.2}"))
        .collect();
    format!(
        "{{\n  \"experiment\": \"obs-overhead\",\n  \"requests\": {},\n  \"clients\": {},\n  \
         \"corpus_size\": {},\n  \"seed\": {},\n  \"repeats\": {},\n  \
         \"wallclock_delta_pct\": {:.2},\n  \"paired_deltas_pct\": [{}],\n  \
         \"record_cost_ns_per_request\": {:.1},\n  \"direct_overhead_pct\": {:.3},\n  \
         \"gate_pct\": {},\n  \"gate_applied\": {},\n  \
         \"access_log_lines\": {},\n  \"layers\": [\n{}\n  ]\n}}\n",
        r.config.requests,
        r.config.clients,
        r.config.corpus_size,
        r.config.seed,
        r.config.repeats,
        r.histogram_overhead_pct,
        deltas.join(", "),
        r.record_cost_ns_per_request,
        r.direct_overhead_pct,
        r.gate_pct,
        r.gate_applied,
        r.access_log_lines,
        layers.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_obs_bench_runs_all_layers_and_skips_the_gate() {
        let log =
            std::env::temp_dir().join(format!("hcg-obs-bench-test-{}.jsonl", std::process::id()));
        let report = run_obs_bench(&ObsBenchConfig {
            requests: 24,
            clients: 3,
            corpus_size: 4,
            seed: 11,
            workers: 2,
            repeats: 1,
            access_log: log.clone(),
        });
        assert_eq!(report.layers.len(), 4);
        assert_eq!(report.layers[0].layer, "off");
        assert!(!report.gate_applied, "24 requests is below the gate floor");
        assert!(report.layers.iter().all(|l| l.requests_per_sec > 0.0));
        assert_eq!(report.paired_deltas_pct.len(), 1, "one delta per round");
        assert!(
            report.record_cost_ns_per_request > 0.0,
            "record cost is measured even on ungated runs"
        );
        // Two layers log 24 requests each (one repeat).
        assert_eq!(report.access_log_lines, 48);
        let json = obs_bench_json(&report);
        hcg_obs::json::validate(&json).expect("obs bench JSON validates");
        assert!(json.contains("\"experiment\": \"obs-overhead\""));
        assert!(json.contains("\"direct_overhead_pct\""));
        assert!(render_obs_bench(&report).contains("histogram record cost"));
        let _ = std::fs::remove_file(&log);
    }

    #[test]
    fn record_cost_is_sane() {
        let ns = record_cost_ns_per_request();
        // Four relaxed-atomic histogram records: more than a nothing,
        // far less than a microsecond even on a slow shared box.
        assert!(ns > 0.0 && ns < 1_000.0, "record cost {ns} ns/request");
    }
}
