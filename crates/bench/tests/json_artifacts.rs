//! One table, every JSON artifact: each machine-readable document the
//! workspace can emit — bench reports, telemetry snapshots, trace
//! exports, service endpoints, access-log lines — must pass the strict
//! `hcg_obs::json::validate` parser. A new emitter that produces invalid
//! JSON (a stray NaN, an unescaped quote, a trailing comma) fails here
//! with its name, not downstream in whatever tool ingests the file.

use hcg_bench::{
    obs_bench_json, profile_json, profile_matrix, run_search, run_serve_bench, search_json,
    serve_bench_json, ObsBenchConfig, ObsBenchReport, ObsLayerResult, ServeBenchConfig,
};
use hcg_fuzz::{run_fuzz, FuzzConfig};
use hcg_obs::{Histogram, MetricsSnapshot, SpanEvent};
use hcg_serve::{client, spawn, RequestRecord, ServeConfig};

/// A trace event with every field exercised (escaping, ids, parents).
fn span_event() -> SpanEvent {
    SpanEvent {
        id: (3 << 32) | 1,
        name: "serve/request \"quoted\"".to_owned(),
        cat: "serve",
        tid: 3,
        depth: 1,
        start_us: 10,
        dur_us: 250,
        trace_id: 0xdead_beef,
        parent: 3 << 32,
    }
}

/// A hand-built overhead report (running the real bench four layers deep
/// belongs to `repro -- obs-bench`, not a unit-speed test).
fn obs_report() -> ObsBenchReport {
    let layer = |name: &'static str, rps: f64| ObsLayerResult {
        layer: name,
        requests_per_sec: rps,
        p50_us: 120,
        p99_us: 900,
        hit_rate: 0.9,
    };
    ObsBenchReport {
        config: ObsBenchConfig::default(),
        layers: vec![
            layer("off", 1000.0),
            layer("histograms", 990.0),
            layer("histograms+access-log", 950.0),
            layer("histograms+access-log+tracing", 900.0),
        ],
        histogram_overhead_pct: 1.0,
        paired_deltas_pct: vec![-0.4, 1.0, 2.2],
        record_cost_ns_per_request: 120.0,
        direct_overhead_pct: 0.15,
        gate_pct: 3.0,
        gate_applied: true,
        access_log_lines: 8000,
    }
}

#[test]
fn every_json_artifact_validates() {
    let mut artifacts: Vec<(&str, String)> = Vec::new();

    // Bench reports.
    let serve_report = run_serve_bench(&ServeBenchConfig {
        requests: 12,
        clients: 2,
        corpus_size: 3,
        seed: 1,
        workers: 2,
        ..ServeBenchConfig::default()
    });
    artifacts.push(("serve-bench report", serve_bench_json(&serve_report)));
    artifacts.push(("obs-bench report", obs_bench_json(&obs_report())));
    artifacts.push(("search report", search_json(&run_search(2, false, 1, 2))));
    let profiled = profile_matrix(Some("fir"));
    artifacts.push(("profile matrix", profile_json(&profiled)));
    artifacts.push((
        "vm region profile",
        profiled.first().expect("fir profiles").profile.to_json(),
    ));
    let fuzz = run_fuzz(&FuzzConfig::new(5, 3));
    artifacts.push(("fuzz report (deterministic)", fuzz.deterministic_json()));
    artifacts.push(("fuzz report (full)", fuzz.to_json()));

    // Telemetry exports.
    artifacts.push((
        "chrome trace export",
        hcg_obs::chrome_trace_json(&[span_event()]),
    ));
    let hist = Histogram::new();
    for v in [0, 1, 9, 100_000] {
        hist.record(v);
    }
    artifacts.push(("histogram snapshot", hist.snapshot().to_json()));
    let mut snap = MetricsSnapshot::new();
    snap.set_counter("jobs", 7);
    snap.set_gauge("ratio \"x\"", 0.5);
    snap.set_gauge("bad", f64::NAN);
    snap.set_histogram("lat", hist.snapshot());
    artifacts.push(("metrics snapshot", snap.to_json()));
    let record = RequestRecord {
        trace_id: 0xabc,
        method: "POST".to_owned(),
        path: "/compile".to_owned(),
        key_prefix: "0011223344556677".to_owned(),
        cache: "miss".to_owned(),
        status: 200,
        latency_us: 1234,
        stages: vec![("queue", 5), ("route", 1200)],
    };
    artifacts.push(("access-log line", record.to_json(false)));
    artifacts.push(("flight-recorder record", record.to_json(true)));

    // Live service endpoints plus the access log it writes.
    let log_path =
        std::env::temp_dir().join(format!("hcg-json-artifacts-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let handle = spawn(ServeConfig {
        access_log: Some(log_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let xml = hcg_model::parser::model_to_xml(&hcg_model::library::fig2_model());
    client::compile(handle.addr(), "", xml.as_bytes()).unwrap();
    let metrics = client::request(handle.addr(), "GET", "/metrics", b"").unwrap();
    artifacts.push(("GET /metrics", metrics.text()));
    let debug = client::request(handle.addr(), "GET", "/debug/requests", b"").unwrap();
    artifacts.push(("GET /debug/requests", debug.text()));
    handle.shutdown();
    let log_text = std::fs::read_to_string(&log_path).unwrap();
    assert!(!log_text.lines().next().unwrap_or("").is_empty());
    for (i, line) in log_text.lines().enumerate() {
        artifacts.push(("daemon access-log line", format!("{line}\n")));
        assert!(line.contains("\"trace_id\""), "log line {i} has a trace id");
    }
    let _ = std::fs::remove_file(&log_path);

    let failures: Vec<String> = artifacts
        .iter()
        .filter_map(|(name, body)| {
            hcg_obs::json::validate(body)
                .err()
                .map(|e| format!("{name}: {e:?}\n--- document ---\n{body}"))
        })
        .collect();
    assert!(
        failures.is_empty(),
        "{} artifact(s) emit invalid JSON:\n{}",
        failures.len(),
        failures.join("\n\n")
    );
    // The table must actually have covered the live endpoints.
    assert!(artifacts.len() >= 15, "artifact table shrank unexpectedly");
}
