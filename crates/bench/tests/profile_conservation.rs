//! Profiler guarantees, pinned end-to-end:
//!
//! 1. **Conservation** — for every bundled model × generator × evaluation
//!    ISA × compiler profile, the per-actor cycles the execution profiler
//!    attributes sum *exactly* to the VM cost model's total charged
//!    cycles. No cycle is lost or double-counted.
//! 2. **Byte-identity** — enabling span tracing changes nothing about
//!    what the generators emit: the `Program` (origins included) and its
//!    rendered C source are identical with tracing on and off.

use hcg_bench::fleet::{generator_named, FLEET_ARCHES, FLEET_GENERATORS};
use hcg_core::emit::to_c_source;
use hcg_kernels::CodeLibrary;
use hcg_model::parser::model_from_xml;
use hcg_model::{library, Model};
use hcg_vm::{profile, Compiler, CostModel};

/// Every bundled model: the paper benchmarks, the two worked figures, and
/// whatever is checked in under `examples/models/`.
fn all_models() -> Vec<Model> {
    let mut models = library::paper_benchmarks();
    models.push(library::fig2_model());
    models.push(library::fig4_model());
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/models");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/models exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "xml"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 8, "example models missing");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable model file");
        models.push(model_from_xml(&text).expect("example parses"));
    }
    models
}

#[test]
fn attribution_conserves_cycles_everywhere() {
    let lib = CodeLibrary::new();
    for model in all_models() {
        for generator in FLEET_GENERATORS {
            let gen = generator_named(generator);
            for arch in FLEET_ARCHES {
                let prog = gen
                    .generate(&model, arch)
                    .unwrap_or_else(|e| panic!("{generator} on {}/{arch}: {e}", model.name));
                assert_eq!(
                    prog.origins.len(),
                    prog.body.len(),
                    "{generator} on {}/{arch}: every top-level statement needs provenance",
                    model.name
                );
                for compiler in Compiler::ALL {
                    let cm = CostModel::new(arch, compiler);
                    let prof = profile(&prog, &lib, &cm);
                    let total = cm.cycles(&prog, &lib);
                    assert_eq!(
                        prof.total_cycles, total,
                        "{generator} on {}/{arch}/{compiler}: profiler total diverged",
                        model.name
                    );
                    assert_eq!(
                        prof.attributed_cycles(),
                        total,
                        "{generator} on {}/{arch}/{compiler}: attribution lost cycles",
                        model.name
                    );
                }
            }
        }
    }
}

#[test]
fn tracing_does_not_change_generated_programs() {
    for model in all_models() {
        for generator in FLEET_GENERATORS {
            for arch in FLEET_ARCHES {
                hcg_obs::set_tracing(false);
                let off = generator_named(generator)
                    .generate(&model, arch)
                    .unwrap_or_else(|e| panic!("{generator} on {}/{arch}: {e}", model.name));
                hcg_obs::set_tracing(true);
                let on = generator_named(generator)
                    .generate(&model, arch)
                    .unwrap_or_else(|e| panic!("{generator} on {}/{arch}: {e}", model.name));
                hcg_obs::set_tracing(false);
                assert_eq!(
                    on, off,
                    "{generator} on {}/{arch}: tracing changed the program",
                    model.name
                );
                assert_eq!(
                    to_c_source(&on),
                    to_c_source(&off),
                    "{generator} on {}/{arch}: tracing changed the C source",
                    model.name
                );
            }
        }
    }
    hcg_obs::clear_events();
}
