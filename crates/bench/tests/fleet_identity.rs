//! Byte-identity guarantee of the parallel fleet: for every benchmark
//! model × generator × architecture job, the C source generated through
//! the work-stealing pool is identical to the sequential reference,
//! whatever the worker count.

use hcg_bench::experiments::benchmark_sessions;
use hcg_bench::fleet::{fleet_jobs, run_fleet, run_fleet_sequential, FLEET_ARCHES};

#[test]
fn parallel_fleet_is_byte_identical_to_sequential() {
    let reference_sessions = benchmark_sessions();
    let reference = run_fleet_sequential(&reference_sessions, &FLEET_ARCHES);
    let jobs = fleet_jobs(reference_sessions.len(), &FLEET_ARCHES);
    assert_eq!(reference.outcomes.len(), jobs.len());
    assert_eq!(
        jobs.len(),
        reference_sessions.len() * 3 * FLEET_ARCHES.len(),
        "all models x 3 generators x {} arches",
        FLEET_ARCHES.len()
    );

    for threads in [1usize, 2, 8] {
        // Fresh sessions per run: worker threads must not benefit from the
        // reference run's cached artifacts.
        let sessions = benchmark_sessions();
        let run = run_fleet(&sessions, &FLEET_ARCHES, threads);
        assert_eq!(run.ok_count(), jobs.len(), "threads={threads}");
        for ((job, reference), parallel) in jobs.iter().zip(&reference.outcomes).zip(&run.outcomes)
        {
            let reference = reference.as_ref().expect("sequential job succeeds");
            let parallel = parallel.as_ref().expect("parallel job succeeds");
            assert_eq!(parallel.model, reference.model, "threads={threads} {job:?}");
            assert_eq!(
                parallel.source, reference.source,
                "threads={threads}: {} via {} on {} diverged",
                reference.model, job.generator, job.arch
            );
        }
    }
}

#[test]
fn cost_tables_identical_across_thread_counts() {
    use hcg_bench::experiments::{fig5_threads, table2_threads};
    let reference = table2_threads(1);
    assert_eq!(reference.len(), 6);
    for threads in [2usize, 8] {
        assert_eq!(
            table2_threads(threads),
            reference,
            "table2 threads={threads}"
        );
    }
    let fig5_reference = fig5_threads(1);
    let fig5_parallel = fig5_threads(8);
    assert_eq!(fig5_reference, fig5_parallel);
}

#[test]
fn fleet_reports_pool_telemetry() {
    let sessions: Vec<_> = benchmark_sessions().into_iter().take(2).collect();
    let run = run_fleet(&sessions, &FLEET_ARCHES, 2);
    assert_eq!(run.workers, 2);
    assert!(run.jobs_per_sec() > 0.0);
    assert!(run.elapsed.as_nanos() > 0);
}
