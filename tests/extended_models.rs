//! Integration coverage for the extended model set: 2-D transforms,
//! matrix-algebra pipelines, branch logic (`Switch`), mixed data widths,
//! and the full generator stack on each.

use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{CodeGenerator, HcgGen, Reference};
use hcg::isa::Arch;
use hcg::kernels::CodeLibrary;
use hcg::model::{library, ActorKind, Model, Shape, SignalType, Tensor};
use hcg::vm::{Machine, Stmt};
use std::collections::BTreeMap;

fn generators() -> Vec<Box<dyn CodeGenerator>> {
    vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(HcgGen::new()),
    ]
}

/// Deterministic, well-conditioned inputs (diagonally dominant matrices so
/// inversion pipelines stay regular).
fn inputs_for(model: &Model, seed: i64) -> BTreeMap<String, Tensor> {
    let types = model.infer_types().expect("valid model");
    let mut out = BTreeMap::new();
    for a in &model.actors {
        if a.kind != ActorKind::Inport {
            continue;
        }
        let ty = types.output(a.id, 0);
        let vals: Vec<f64> = (0..ty.len())
            .map(|i| {
                let base = (((i as i64 + seed + a.id.0 as i64 * 11) * 29) % 17) as f64 / 9.0 - 0.9;
                match ty.shape {
                    Shape::Matrix(_, c) if i / c == i % c => base + c as f64 + 2.0,
                    _ => base,
                }
            })
            .collect();
        let t = if ty.dtype.is_float() {
            Tensor::from_f64(ty, vals).expect("sized")
        } else {
            Tensor::from_i64(ty, vals.iter().map(|v| (v * 10.0) as i64).collect()).expect("sized")
        };
        out.insert(a.name.clone(), t);
    }
    out
}

fn assert_all_generators_match(model: &Model, arch: Arch, tol: f64) {
    let lib = CodeLibrary::new();
    let inputs = inputs_for(model, 5);
    let mut reference = Reference::new(model).expect("reference builds");
    let want = reference.step(&inputs).expect("reference step");
    for g in generators() {
        let p = g.generate(model, arch).expect("generates");
        let mut m = Machine::new(&p, &lib);
        for (name, value) in &inputs {
            m.set_input(name, value).expect("input exists");
        }
        m.step().expect("executes");
        for (name, expected) in &want {
            let got = m.read_buffer(name).expect("output exists");
            let scale = expected
                .as_f64()
                .iter()
                .fold(1.0f64, |acc, v| acc.max(v.abs()));
            assert!(
                got.max_abs_diff(expected) / scale <= tol,
                "{} on {}: output {} differs by {}",
                g.name(),
                model.name,
                name,
                got.max_abs_diff(expected)
            );
        }
    }
}

#[test]
fn dct2d_pipeline() {
    assert_all_generators_match(&library::dct2d_model(8, 8), Arch::Neon128, 1e-6);
}

#[test]
fn fft2d_pipeline() {
    assert_all_generators_match(&library::fft2d_model(4, 8), Arch::Avx256, 1e-6);
}

#[test]
fn conv2d_pipeline() {
    assert_all_generators_match(&library::conv2d_model(8, 8, 3, 3), Arch::Sse128, 1e-6);
}

#[test]
fn matrix_pipeline_all_archs() {
    for arch in Arch::ALL {
        assert_all_generators_match(&library::matrix_pipeline_model(3), arch, 1e-6);
        assert_all_generators_match(&library::matrix_pipeline_model(4), arch, 1e-6);
    }
}

#[test]
fn matrix_pipeline_uses_specialised_kernels() {
    // HCG's Algorithm 1 must pick the analytic/unrolled implementations at
    // 3x3; the baselines stay on the generic ones.
    let model = library::matrix_pipeline_model(3);
    let calls = |p: &hcg::vm::Program| -> Vec<String> {
        p.body
            .iter()
            .filter_map(|s| match s {
                Stmt::KernelCall { impl_name, .. } => Some(impl_name.clone()),
                _ => None,
            })
            .collect()
    };
    let hcg_prog = HcgGen::new().generate(&model, Arch::Neon128).expect("gen");
    assert_eq!(calls(&hcg_prog), ["unrolled", "analytic", "analytic"]);
    let coder_prog = SimulinkCoderGen::new()
        .generate(&model, Arch::Neon128)
        .expect("gen");
    assert_eq!(calls(&coder_prog), ["general", "gauss", "lu"]);
}

#[test]
fn switch_model_pipeline() {
    // Branch logic: Switch/Saturate/Gain are basic actors; the trailing
    // Add still vectorises under HCG.
    let model = library::switch_model(64);
    for arch in Arch::ALL {
        assert_all_generators_match(&model, arch, 1e-5);
    }
    let p = HcgGen::new().generate(&model, Arch::Neon128).expect("gen");
    assert!(
        p.stmt_stats().vops > 0,
        "the Add after the Switch vectorises"
    );
}

#[test]
fn mixed_width_model_pipeline() {
    // i16 region → Cast → i32 region: two regions with different lane
    // counts in one program.
    let model = library::mixed_width_model(40);
    for arch in Arch::ALL {
        assert_all_generators_match(&model, arch, 0.0);
    }
    let p = HcgGen::new().generate(&model, Arch::Neon128).expect("gen");
    let has_i16_vop = p.body.iter().any(|s| {
        matches!(s, Stmt::Loop { body, .. }
        if body.iter().any(|b| matches!(b, Stmt::VOp { instr, .. } if instr.ends_with("s16"))))
    });
    let has_i32_vop = p.body.iter().any(|s| {
        matches!(s, Stmt::Loop { body, .. }
        if body.iter().any(|b| matches!(b, Stmt::VOp { instr, .. } if instr.ends_with("s32"))))
    });
    assert!(has_i16_vop, "i16 region vectorises at 8 lanes");
    assert!(has_i32_vop, "i32 region vectorises at 4 lanes");
}

#[test]
fn intensive_2d_dispatch_sizes() {
    use hcg::core::dispatch::{classify, Dispatch};
    use hcg::kernels::KernelSize;
    let model = library::conv2d_model(8, 8, 3, 3);
    let types = model.infer_types().expect("valid");
    let actor = model.actor_by_name("conv2d").expect("present");
    let Dispatch::Intensive { size } = classify(&model, &types, actor) else {
        panic!("conv2d must dispatch intensive");
    };
    assert_eq!(size, KernelSize(vec![8, 8, 3, 3]));
}

#[test]
fn reference_rejects_singular_inversion() {
    // A singular product must surface as an error, not a wrong answer.
    let model = library::matrix_pipeline_model(2);
    let types = model.infer_types().expect("valid");
    let ty = types.output(model.actor_by_name("A").expect("present").id, 0);
    let mut inputs = BTreeMap::new();
    inputs.insert(
        "A".to_owned(),
        Tensor::from_f64(ty, vec![1.0, 2.0, 2.0, 4.0]).expect("sized"),
    );
    inputs.insert(
        "B".to_owned(),
        Tensor::from_f64(ty, vec![1.0, 0.0, 0.0, 1.0]).expect("sized"),
    );
    let mut reference = Reference::new(&model).expect("builds");
    assert!(reference.step(&inputs).is_err());
    let _ = SignalType::scalar(hcg::model::DataType::F64);
}
