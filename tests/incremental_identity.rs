//! Workspace gate for incremental recompilation: an [`EditSession`] must
//! produce byte-identical C to a from-scratch compile after *any* edit,
//! for every generator × architecture pair.
//!
//! Two layers of evidence:
//!
//! 1. targeted unit tests, one per [`EditOp`] family (parameter change,
//!    retype, rewire, actor addition, actor removal), on a hand-built
//!    model where the expected dirty region is known;
//! 2. the metamorphic edit oracle fanned over the [`hcg_exec`] pool:
//!    seeded random edit sequences against seeded random models, every
//!    intermediate model compiled both ways. Release builds run the full
//!    thousand-sequence sweep; debug builds run a fast subset so
//!    `cargo test` stays quick.

use hcg_core::emit::to_c_source;
use hcg_core::EditSession;
use hcg_fuzz::oracle::{generator_named, ORACLE_ARCHES, ORACLE_GENERATORS};
use hcg_fuzz::{case_seed, run_edit_case, EditOracleConfig, GenConfig};
use hcg_model::delta::EditOp;
use hcg_model::{ActorKind, DataType, Model, ModelBuilder, ModelDelta, Param, SignalType};

/// Two chains sharing nothing: `a + b → neg → out1` and `c >> 1 → out2`.
/// Every edit family below touches exactly one chain, so the other
/// chain's cached region plan must survive — and the output bytes must
/// still match scratch exactly.
fn edit_bed() -> Model {
    let ty = SignalType::vector(DataType::I32, 8);
    let mut b = ModelBuilder::new("EditBed");
    let a = b.inport("a", ty);
    let b_in = b.inport("b", ty);
    let add = b.add_actor("add", ActorKind::Add);
    let neg = b.add_actor("neg", ActorKind::Neg);
    let o1 = b.outport("out1");
    b.connect(a, 0, add, 0);
    b.connect(b_in, 0, add, 1);
    b.connect(add, 0, neg, 0);
    b.connect(neg, 0, o1, 0);
    let c = b.inport("c", ty);
    let sh = b.shift("sh", ActorKind::Shr, 1);
    let o2 = b.outport("out2");
    b.connect(c, 0, sh, 0);
    b.connect(sh, 0, o2, 0);
    b.build().expect("edit bed is valid")
}

/// Compile the session's current model incrementally and from scratch for
/// every oracle generator × architecture, asserting byte-identity.
fn assert_matches_scratch(session: &mut EditSession, label: &str) {
    for g in ORACLE_GENERATORS {
        for arch in ORACLE_ARCHES {
            let generator = generator_named(g);
            let inc = session
                .generate(generator.as_ref(), arch)
                .unwrap_or_else(|e| panic!("{label}: incremental {g} on {arch}: {e}"));
            // A fresh generator on the scratch side: autotuner history
            // must neither mask nor cause a divergence.
            let fresh = generator_named(g)
                .generate(session.model(), arch)
                .unwrap_or_else(|e| panic!("{label}: scratch {g} on {arch}: {e}"));
            assert_eq!(
                to_c_source(&inc),
                to_c_source(&fresh),
                "{label}: {g} on {arch} diverged from scratch"
            );
        }
    }
}

/// Warm a session on the edit bed, apply one delta, and check identity.
fn check_single_edit(delta: ModelDelta, label: &str) {
    let mut session = EditSession::new(edit_bed());
    assert_matches_scratch(&mut session, "cold");
    session
        .apply_delta(&delta)
        .unwrap_or_else(|e| panic!("{label}: apply: {e}"));
    assert_matches_scratch(&mut session, label);
}

#[test]
fn set_param_edit_matches_scratch() {
    check_single_edit(
        ModelDelta::single(EditOp::SetParam {
            name: "sh".into(),
            param: "amount".into(),
            value: Param::Int(3),
        }),
        "set-param",
    );
}

#[test]
fn set_kind_edit_matches_scratch() {
    // Retype the binary op; arity is unchanged but the delta is
    // structural, so the schedule is rebuilt.
    check_single_edit(
        ModelDelta::single(EditOp::SetKind {
            name: "add".into(),
            kind: ActorKind::Sub,
        }),
        "set-kind",
    );
}

#[test]
fn rewire_edit_matches_scratch() {
    // `neg` now consumes the shift chain's value instead of `add`'s.
    check_single_edit(
        ModelDelta::single(EditOp::Connect {
            from: ("sh".into(), 0),
            to: ("neg".into(), 0),
        }),
        "rewire",
    );
}

#[test]
fn add_actor_edit_matches_scratch() {
    // Tap the shift output into a new unary actor and outport.
    check_single_edit(
        ModelDelta {
            ops: vec![
                EditOp::AddActor {
                    name: "tap".into(),
                    kind: ActorKind::Neg,
                    params: Default::default(),
                },
                EditOp::AddActor {
                    name: "tap_out".into(),
                    kind: ActorKind::Outport,
                    params: Default::default(),
                },
                EditOp::Connect {
                    from: ("sh".into(), 0),
                    to: ("tap".into(), 0),
                },
                EditOp::Connect {
                    from: ("tap".into(), 0),
                    to: ("tap_out".into(), 0),
                },
            ],
        },
        "add-actor",
    );
}

#[test]
fn remove_actor_edit_matches_scratch() {
    // Bypass `neg`: route its driver straight to the consumer, then drop
    // the actor. ActorIds shift on removal — names must stay the key.
    check_single_edit(
        ModelDelta {
            ops: vec![
                EditOp::Connect {
                    from: ("add".into(), 0),
                    to: ("out1".into(), 0),
                },
                EditOp::RemoveActor { name: "neg".into() },
            ],
        },
        "remove-actor",
    );
}

#[test]
fn edit_sequence_accumulates_without_divergence() {
    // Several edits in a row on one session: identity must hold at every
    // intermediate model, not just the final one.
    let mut session = EditSession::new(edit_bed());
    assert_matches_scratch(&mut session, "cold");
    let edits = [
        ModelDelta::single(EditOp::SetParam {
            name: "sh".into(),
            param: "amount".into(),
            value: Param::Int(2),
        }),
        ModelDelta::single(EditOp::SetKind {
            name: "add".into(),
            kind: ActorKind::Max,
        }),
        ModelDelta::single(EditOp::SetParam {
            name: "sh".into(),
            param: "amount".into(),
            value: Param::Int(1),
        }),
    ];
    for (i, delta) in edits.iter().enumerate() {
        session
            .apply_delta(delta)
            .unwrap_or_else(|e| panic!("edit {i}: {e}"));
        assert_matches_scratch(&mut session, &format!("sequence edit {i}"));
    }
}

/// The headline gate: seeded random edit sequences, every intermediate
/// compiled incrementally and from scratch across all generators × ISAs,
/// zero divergences. Release builds sweep ≥1,000 sequences (the ISSUE
/// acceptance bar); debug builds run a 24-sequence smoke of the same
/// property so plain `cargo test` still exercises the path.
#[test]
fn random_edit_sequences_never_diverge() {
    const BASE_SEED: u64 = 0x1DE0_7E57;
    let sequences: usize = if cfg!(debug_assertions) { 24 } else { 1000 };
    let gen_cfg = GenConfig::default();
    let edit_cfg = EditOracleConfig::default();
    let jobs: Vec<_> = (0..sequences)
        .map(|i| {
            let gen_cfg = gen_cfg.clone();
            move || {
                let seed = case_seed(BASE_SEED, i);
                (seed, run_edit_case(seed, &gen_cfg, &edit_cfg))
            }
        })
        .collect();
    let mut failures = Vec::new();
    for result in hcg_exec::run_jobs(0, jobs) {
        let (seed, divergences) = result.unwrap_or_else(|p| panic!("edit case panicked: {p}"));
        for d in divergences {
            failures.push(format!("seed {seed:#018x}: [{}] {}", d.check, d.detail));
        }
    }
    assert!(
        failures.is_empty(),
        "{} divergence(s) across {sequences} edit sequences:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
