//! Verify gate: the static translation validator proves the whole generator
//! fleet equivalent to its models, catches hand-planted miscompiles with
//! exact witnesses, and its effect analysis matches the VM's dynamic access
//! log byte for byte.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Proved fleet** — every bundled model × generator × evaluation ISA
//!    verifies equivalent, with zero execution.
//! 2. **Exact witnesses** — corrupting a generated program (swapped
//!    operands, dropped statement, wrong lane width) produces a
//!    first-divergence witness naming the culprit statement.
//! 3. **Sound effects** — the static [`EffectSummary`] equals the access
//!    log the VM interpreter records while actually running the program.

use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{CodeGenerator, HcgGen};
use hcg::isa::Arch;
use hcg::kernels::CodeLibrary;
use hcg::model::op::ElemOp;
use hcg::model::parser::model_from_xml;
use hcg::model::{library, Model};
use hcg::verify::{effect_summary, verify_program};
use hcg::vm::{Machine, Program, ScalarOp, Stmt};

fn fleet() -> Vec<Box<dyn CodeGenerator>> {
    vec![
        Box::new(HcgGen::new()),
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
    ]
}

const VERIFY_ARCHES: [Arch; 2] = [Arch::Neon128, Arch::Avx256];

fn gate_models() -> Vec<Model> {
    library::paper_benchmarks()
        .into_iter()
        .chain([
            library::fig2_model(),
            library::fig4_model(),
            library::switch_model(128),
            library::mixed_width_model(128),
        ])
        .collect()
}

/// A tiny `out = a - b` model: `Sub` is non-commutative, so operand order
/// is observable and a swap must produce a witness.
fn sub_model() -> Model {
    model_from_xml(
        r#"<model name="sub16">
            <actor id="0" name="a" kind="Inport"><param name="type">f32*16</param></actor>
            <actor id="1" name="b" kind="Inport"><param name="type">f32*16</param></actor>
            <actor id="2" name="diff" kind="Sub"/>
            <actor id="3" name="y" kind="Outport"/>
            <connect from="0:0" to="2:0"/>
            <connect from="1:0" to="2:1"/>
            <connect from="2:0" to="3:0"/>
        </model>"#,
    )
    .expect("sub model parses")
}

#[test]
fn fleet_is_statically_proved_over_library_models() {
    for model in gate_models() {
        for generator in fleet() {
            for arch in VERIFY_ARCHES {
                let prog = generator.generate(&model, arch).unwrap_or_else(|e| {
                    panic!("{} on {}/{arch}: {e}", generator.name(), model.name)
                });
                let outcome = verify_program(&model, &prog).unwrap_or_else(|e| {
                    panic!("{} on {}/{arch}: {e}", generator.name(), model.name)
                });
                assert!(
                    outcome.equivalent,
                    "{} on {}/{arch} diverges: {}",
                    generator.name(),
                    model.name,
                    outcome.witness.expect("divergent outcome has a witness")
                );
                assert!(outcome.elems > 0, "nothing was checked");
            }
        }
    }
}

/// Find the top-level index of the first statement containing a scalar
/// `Sub`, and swap that Sub's operands in place.
fn swap_first_sub(prog: &mut Program) -> usize {
    fn swap_in(stmt: &mut Stmt) -> bool {
        match stmt {
            Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Sub),
                srcs,
                ..
            } => {
                srcs.swap(0, 1);
                true
            }
            Stmt::Loop { body, .. } => body.iter_mut().any(swap_in),
            _ => false,
        }
    }
    for (i, stmt) in prog.body.iter_mut().enumerate() {
        if swap_in(stmt) {
            return i;
        }
    }
    panic!("no scalar Sub statement found to corrupt");
}

#[test]
fn swapped_operands_yield_exact_witness() {
    let model = sub_model();
    let mut prog = SimulinkCoderGen::new()
        .generate(&model, Arch::Neon128)
        .expect("generate");
    let culprit = swap_first_sub(&mut prog);
    // The witness blames the statement that last wrote the diverging
    // element — the final writer of the output buffer (the corrupted Sub
    // itself when it writes the output directly, a downstream copy
    // otherwise).
    let out_buf = prog.buffers_of(hcg::vm::BufferKind::Output)[0];
    let effects = effect_summary(&prog);
    let writer = (0..prog.body.len())
        .rev()
        .find(|&i| effects.per_stmt[i].writes.contains(&out_buf.0))
        .expect("some statement writes the output");
    assert!(writer >= culprit, "output is written at or after the Sub");

    let outcome = verify_program(&model, &prog).expect("verify runs");
    assert!(!outcome.equivalent, "swapped Sub operands went undetected");
    let w = outcome.witness.expect("witness");
    assert_eq!(w.port, "y");
    assert!(!w.is_state);
    assert_eq!(w.elem, 0, "element 0 is the first checked element");
    assert_eq!(
        w.stmt,
        Some(writer),
        "witness must blame the statement that wrote the element: {w}"
    );
    // The trees show the flipped operand order.
    assert_eq!(w.expected, "Sub(in0[0], in1[0])", "{w}");
    assert_eq!(w.actual, "Sub(in1[0], in0[0])", "{w}");
}

#[test]
fn dropped_statement_yields_witness_with_no_writer() {
    let model = sub_model();
    let mut prog = SimulinkCoderGen::new()
        .generate(&model, Arch::Neon128)
        .expect("generate");
    // Drop the (last) statement that writes the output buffer; the output
    // keeps its initial zero.
    let out_buf = prog.buffers_of(hcg::vm::BufferKind::Output)[0];
    let effects = effect_summary(&prog);
    let victim = (0..prog.body.len())
        .rev()
        .find(|&i| effects.per_stmt[i].writes.contains(&out_buf.0))
        .expect("some statement writes the output");
    prog.body.remove(victim);
    prog.origins.remove(victim);

    let outcome = verify_program(&model, &prog).expect("verify runs");
    assert!(!outcome.equivalent, "dropped statement went undetected");
    let w = outcome.witness.expect("witness");
    assert_eq!(w.port, "y");
    assert_eq!(w.elem, 0);
    assert_eq!(
        w.stmt, None,
        "nothing writes the element after the drop: {w}"
    );
    assert_eq!(w.actual, "0", "output keeps its initial zero: {w}");
}

#[test]
fn wrong_lane_width_yields_witness() {
    let model = sub_model();
    let mut prog = HcgGen::new()
        .generate(&model, Arch::Neon128)
        .expect("generate");
    // Narrow the destination register of the first vector op: the VOp and
    // the store that follows now only cover half the lanes, so the upper
    // elements of the first chunk keep their initial zeros.
    let dst = prog
        .body
        .iter()
        .find_map(|s| match s {
            Stmt::VOp { dst, .. } => Some(*dst),
            Stmt::Loop { body, .. } => body.iter().find_map(|s| match s {
                Stmt::VOp { dst, .. } => Some(*dst),
                _ => None,
            }),
            _ => None,
        })
        .expect("HCG emits a vector op for sub16 on neon128");
    let (dt, lanes) = prog.reg_types[dst.0];
    assert!(lanes >= 2, "vector register should be multi-lane");
    prog.reg_types[dst.0] = (dt, lanes / 2);

    let outcome = verify_program(&model, &prog).expect("verify runs");
    assert!(!outcome.equivalent, "halved lane width went undetected");
    let w = outcome.witness.expect("witness");
    assert_eq!(w.port, "y");
    assert_eq!(
        w.elem,
        lanes / 2,
        "first element beyond the narrowed store diverges: {w}"
    );
    assert_eq!(
        w.actual, "0",
        "uncovered lanes keep their initial zero: {w}"
    );
}

#[test]
fn effect_summary_matches_vm_access_log() {
    let lib = CodeLibrary::new();
    let models: Vec<Model> = vec![
        library::fig2_model(),
        library::fig4_model(),
        library::switch_model(64),
        library::mixed_width_model(64),
        sub_model(),
    ];
    for model in &models {
        for generator in fleet() {
            for arch in VERIFY_ARCHES {
                let prog = generator.generate(model, arch).unwrap_or_else(|e| {
                    panic!("{} on {}/{arch}: {e}", generator.name(), model.name)
                });
                let effects = effect_summary(&prog);

                let mut m = Machine::new(&prog, &lib);
                m.enable_access_log();
                m.step().expect("program executes");
                let log = m.take_access_log().expect("log was enabled");

                assert_eq!(log.per_stmt.len(), effects.per_stmt.len());
                for (i, (dynamic, statik)) in log.per_stmt.iter().zip(&effects.per_stmt).enumerate()
                {
                    assert_eq!(
                        dynamic.reads,
                        statik.reads,
                        "{} on {}/{arch} statement {i}: static read set differs from VM",
                        generator.name(),
                        model.name
                    );
                    assert_eq!(
                        dynamic.writes,
                        statik.writes,
                        "{} on {}/{arch} statement {i}: static write set differs from VM",
                        generator.name(),
                        model.name
                    );
                }
            }
        }
    }
}

#[test]
fn effect_summary_folds_by_actor_and_region() {
    let model = library::fig2_model();
    let prog = HcgGen::new()
        .generate(&model, Arch::Neon128)
        .expect("generate");
    let effects = effect_summary(&prog);
    assert!(
        !effects.actors.is_empty(),
        "generated programs carry origin labels"
    );
    // Folding per-statement effects over all actors reproduces the union of
    // per-statement sets for statements that carry an origin.
    let mut folded = hcg::verify::StmtEffects::default();
    for eff in effects.actors.values() {
        folded.absorb(eff);
    }
    let mut union = hcg::verify::StmtEffects::default();
    for (i, eff) in effects.per_stmt.iter().enumerate() {
        if prog.origins.get(i).is_some() {
            union.absorb(eff);
        }
    }
    assert_eq!(folded, union);
}

#[test]
fn debug_verify_hook_gates_generation() {
    let model = sub_model();
    // With the hook enabled, generation of a correct program still succeeds
    // (the verifier proves it and returns quietly).
    hcg::core::set_debug_verify(true);
    let prog = HcgGen::new()
        .generate(&model, Arch::Neon128)
        .expect("verified generation succeeds");
    hcg::core::set_debug_verify(false);

    // In debug builds the hook panics on a corrupted program.
    #[cfg(debug_assertions)]
    {
        let mut bad = prog.clone();
        swap_first_sub_anywhere(&mut bad);
        hcg::core::set_debug_verify(true);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hcg::core::debug_verify(&model, &bad)
        }));
        hcg::core::set_debug_verify(false);
        assert!(r.is_err(), "debug_verify must panic on a miscompile");
    }
    #[cfg(not(debug_assertions))]
    let _ = prog;
}

/// Swap the first scalar *or vector* Sub's operands (HCG programs carry the
/// op inside vector statements).
#[cfg(debug_assertions)]
fn swap_first_sub_anywhere(prog: &mut Program) {
    fn swap_in(stmt: &mut Stmt) -> bool {
        match stmt {
            Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Sub),
                srcs,
                ..
            } => {
                srcs.swap(0, 1);
                true
            }
            Stmt::VOp { pattern, srcs, .. } if pattern.op == ElemOp::Sub && srcs.len() >= 2 => {
                srcs.swap(0, 1);
                true
            }
            Stmt::Loop { body, .. } => body.iter_mut().any(swap_in),
            _ => false,
        }
    }
    assert!(
        prog.body.iter_mut().any(swap_in),
        "no Sub statement found to corrupt"
    );
}
