//! Property-based integration tests (proptest): generator equivalence on
//! random models, remainder handling at every length, pattern/ISA round
//! trips, and kernel invariants exercised through the public API.

use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{CodeGenerator, HcgGen, Reference};
use hcg::isa::{parse::instr_set_from_text, parse::instr_set_to_text, sets, Arch, Pattern};
use hcg::kernels::{CodeLibrary, KernelSize};
use hcg::model::{library, ActorKind, DataType, Model, SignalType, Tensor};
use hcg::vm::Machine;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn run_all_and_compare(model: &Model, arch: Arch, inputs: &BTreeMap<String, Tensor>) -> f64 {
    let lib = CodeLibrary::new();
    let mut reference = Reference::new(model).expect("reference builds");
    let want = reference.step(inputs).expect("reference step");
    let generators: Vec<Box<dyn CodeGenerator>> = vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(HcgGen::new()),
    ];
    let mut worst = 0.0f64;
    for g in generators {
        let p = g.generate(model, arch).expect("generates");
        let mut m = Machine::new(&p, &lib);
        for (name, value) in inputs {
            m.set_input(name, value).expect("set input");
        }
        m.step().expect("step");
        for (name, expected) in &want {
            let got = m.read_buffer(name).expect("read output");
            let scale = expected
                .as_f64()
                .iter()
                .fold(1.0f64, |acc, v| acc.max(v.abs()));
            worst = worst.max(got.max_abs_diff(expected) / scale);
        }
    }
    worst
}

fn inputs_for(model: &Model, seed: i64) -> BTreeMap<String, Tensor> {
    let types = model.infer_types().expect("valid");
    let mut out = BTreeMap::new();
    for a in &model.actors {
        if a.kind != ActorKind::Inport {
            continue;
        }
        let ty = types.output(a.id, 0);
        let t = if ty.dtype.is_float() {
            let vals: Vec<f64> = (0..ty.len())
                .map(|i| (((i as i64 + seed) * 37 % 41) as f64) / 13.0 - 1.5)
                .collect();
            Tensor::from_f64(ty, vals).expect("sized")
        } else {
            let vals: Vec<i64> = (0..ty.len())
                .map(|i| (i as i64 * 29 + seed) % 173 - 86)
                .collect();
            Tensor::from_i64(ty, vals).expect("sized")
        };
        out.insert(a.name.clone(), t);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's §4.1 consistency claim as a property: every generator
    /// computes what the reference computes, on arbitrary random models.
    #[test]
    fn generators_agree_on_random_models(
        seed in 1u64..5000,
        len in 1usize..40,
        actors in 1usize..12,
        arch_pick in 0usize..3,
    ) {
        let model = library::random_batch_model(seed, len, actors);
        let arch = Arch::ALL[arch_pick];
        let inputs = inputs_for(&model, seed as i64);
        let worst = run_all_and_compare(&model, arch, &inputs);
        prop_assert!(worst < 1e-5, "worst relative diff {worst}");
    }

    /// Remainder handling: the Fig. 4 graph at *every* length (exercising
    /// offset = len % lanes in 0..lanes) stays bit-exact on integers.
    #[test]
    fn remainder_paths_exact(len in 1usize..70, arch_pick in 0usize..3) {
        let model = library::fig4_model_sized(len);
        let arch = Arch::ALL[arch_pick];
        let inputs = inputs_for(&model, len as i64);
        let worst = run_all_and_compare(&model, arch, &inputs);
        prop_assert_eq!(worst, 0.0);
    }

    /// FIR with arbitrary taps and lengths stays exact (delay chains,
    /// constant vectors, add trees).
    #[test]
    fn fir_any_shape_exact(len in 1usize..50, taps in 1usize..6) {
        let model = library::fir_model(len, taps);
        let inputs = inputs_for(&model, (len * taps) as i64);
        let worst = run_all_and_compare(&model, Arch::Neon128, &inputs);
        prop_assert_eq!(worst, 0.0);
    }

    /// Pattern expressions round-trip through their display form.
    #[test]
    fn pattern_display_roundtrip(depth_pick in 0usize..6, shift in 0u32..8) {
        let exprs = [
            format!("Shr[{shift}](Add(I1, I2))"),
            "Add(I1, Mul(I2, I3))".to_owned(),
            "Sub(Mul(I1, I2), I3)".to_owned(),
            "Abd(I1, I2)".to_owned(),
            "Neg(I1)".to_owned(),
            "Min(Max(I1, I2), I3)".to_owned(),
        ];
        let text = &exprs[depth_pick];
        let p: Pattern = text.parse().expect("pattern parses");
        let again: Pattern = p.to_string().parse().expect("display parses");
        prop_assert_eq!(p, again);
    }

    /// Kernel-size filters of the FFT family respect Algorithm 1's
    /// contract: the general implementation accepts everything; every
    /// accepted implementation really runs at that size.
    #[test]
    fn fft_library_filters_sound(n in 1usize..300) {
        let lib = CodeLibrary::new();
        let size = KernelSize(vec![n]);
        let input = Tensor::from_f64(
            SignalType::vector(DataType::F32, n),
            (0..n).map(|i| (i as f64 * 0.21).cos()).collect(),
        ).expect("sized");
        let general = lib.general_for(ActorKind::Fft).expect("general exists");
        prop_assert!(general.can_handle_size(&size));
        let reference = general.run(std::slice::from_ref(&input)).expect("general runs");
        for k in lib.for_actor(ActorKind::Fft) {
            if k.can_handle_size(&size) {
                let out = k.run(std::slice::from_ref(&input)).expect("accepted impl runs");
                prop_assert!(
                    out.max_abs_diff(&reference) < 1e-5,
                    "{} diverges at n={n}", k.name
                );
            }
        }
    }
}

#[test]
fn builtin_isa_files_roundtrip_via_text() {
    for arch in Arch::ALL {
        let set = sets::builtin(arch);
        let text = instr_set_to_text(&set);
        let back = instr_set_from_text(&text).expect("round-trip parses");
        assert_eq!(set, back, "{arch}");
    }
}

#[test]
fn model_files_roundtrip_for_benchmarks() {
    use hcg::model::parser::{model_from_xml, model_to_xml};
    for model in library::paper_benchmarks() {
        let back = model_from_xml(&model_to_xml(&model)).expect("parses");
        assert_eq!(back, model);
    }
}
