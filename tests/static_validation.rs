//! Every program any generator emits must pass the VM's static validator —
//! on the benchmark suite, the extended models, and random models.

use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{CodeGenerator, HcgGen};
use hcg::isa::Arch;
use hcg::kernels::CodeLibrary;
use hcg::model::library;
use hcg::vm::validate;
use proptest::prelude::*;

fn generators() -> Vec<Box<dyn CodeGenerator>> {
    vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(HcgGen::new()),
    ]
}

#[test]
fn benchmark_programs_validate() {
    let lib = CodeLibrary::new();
    let models = library::paper_benchmarks()
        .into_iter()
        .chain([
            library::fig2_model(),
            library::fig4_model(),
            library::dct2d_model(8, 8),
            library::fft2d_model(4, 8),
            library::conv2d_model(8, 8, 3, 3),
            library::matrix_pipeline_model(3),
            library::switch_model(64),
            library::mixed_width_model(40),
            library::single_batch_model(1024),
        ])
        .collect::<Vec<_>>();
    for model in &models {
        for arch in Arch::ALL {
            for g in generators() {
                let p = g.generate(model, arch).expect("generates");
                validate(&p, &lib)
                    .unwrap_or_else(|e| panic!("{} for {} on {arch}: {e}", g.name(), model.name));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_programs_validate(
        seed in 1u64..10_000,
        len in 1usize..50,
        actors in 1usize..14,
        arch_pick in 0usize..3,
    ) {
        let lib = CodeLibrary::new();
        let model = library::random_batch_model(seed, len, actors);
        let arch = Arch::ALL[arch_pick];
        for g in generators() {
            let p = g.generate(&model, arch).expect("generates");
            prop_assert!(
                validate(&p, &lib).is_ok(),
                "{} seed={seed} len={len} actors={actors} arch={arch}: {:?}",
                g.name(),
                validate(&p, &lib)
            );
        }
    }

    /// Awkward lengths around the lane boundaries never produce
    /// out-of-range vector accesses.
    #[test]
    fn lane_boundary_lengths_validate(len in 1usize..40) {
        let lib = CodeLibrary::new();
        let model = library::fig4_model_sized(len);
        for arch in Arch::ALL {
            for g in generators() {
                let p = g.generate(&model, arch).expect("generates");
                prop_assert!(validate(&p, &lib).is_ok(), "{} len={len} {arch}", g.name());
            }
        }
    }
}
