//! Golden checks on the emitted C-like source: the paper's Figure 2 code
//! comparison and Listing 1 are regenerated verbatim-modulo-naming.

use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{emit::to_c_source, CodeGenerator, HcgGen};
use hcg::isa::Arch;
use hcg::model::library;

#[test]
fn figure2_coder_code_shape() {
    // Paper: "It contains four multiplications, four additions and four
    // reciprocal" — fully unrolled by expression folding.
    let p = SimulinkCoderGen::new()
        .generate(&library::fig2_model(), Arch::Neon128)
        .expect("generates");
    let src = to_c_source(&p);
    assert_eq!(src.matches(" * ").count(), 4, "{src}");
    assert_eq!(src.matches(" + ").count(), 4, "{src}");
    assert_eq!(src.matches("1.0f / ").count(), 4, "{src}");
    assert!(
        !src.contains("for ("),
        "expression folding unrolls 4-wide arrays:\n{src}"
    );
}

#[test]
fn figure2_hcg_code_shape() {
    // Paper: "only two operations are required" (multiply-add and
    // reciprocal) — we emit vmla + vrecpe, plus loads/stores.
    let p = HcgGen::new()
        .generate(&library::fig2_model(), Arch::Neon128)
        .expect("generates");
    let src = to_c_source(&p);
    assert!(src.contains("vmlaq_f32"), "{src}");
    assert!(src.contains("vrecpeq_f32"), "{src}");
    assert_eq!(p.stmt_stats().vops, 2, "{src}");
}

#[test]
fn listing1_full_text() {
    let p = HcgGen::new()
        .generate(&library::fig4_model(), Arch::Neon128)
        .expect("generates");
    let src = to_c_source(&p);
    // Every line of the paper's Listing 1, in order.
    let expected = [
        "int32x4_t b_batch = vld1q_s32(&b[0]);",
        "int32x4_t c_batch = vld1q_s32(&c[0]);",
        "int32x4_t a_batch = vld1q_s32(&a[0]);",
        "int32x4_t d_batch = vld1q_s32(&d[0]);",
        "int32x4_t Sub_batch = vsubq_s32(b_batch, c_batch);",
        "int32x4_t Shr_batch = vhaddq_s32(a_batch, Sub_batch);",
        "int32x4_t AddM_batch = vmlaq_s32(Sub_batch, Sub_batch, d_batch);",
        "vst1q_s32(&Shr_out[0], Shr_batch);",
        "vst1q_s32(&Add_out[0], AddM_batch);",
    ];
    let mut cursor = 0;
    for line in &expected {
        let pos = src[cursor..]
            .find(line)
            .unwrap_or_else(|| panic!("missing or out of order: {line}\n{src}"));
        cursor += pos + line.len();
    }
}

#[test]
fn dfsynth_emits_structured_loops() {
    let p = DfSynthGen::new()
        .generate(&library::fig4_model_sized(64), Arch::Neon128)
        .expect("generates");
    let src = to_c_source(&p);
    assert_eq!(
        src.matches("for (size_t i = 0; i < 64; i += 1)").count(),
        5,
        "one structured loop per batch actor:\n{src}"
    );
    assert!(!src.contains("vld1q"), "DFSynth never vectorises");
}

#[test]
fn intel_emission_spellings() {
    let p = HcgGen::new()
        .generate(&library::fig4_model_sized(64), Arch::Sse128)
        .expect("generates");
    let src = to_c_source(&p);
    assert!(src.contains("__m128i"), "{src}");
    assert!(src.contains("_mm_loadu_si128"), "{src}");
    assert!(src.contains("_mm_storeu_si128"), "{src}");
    // SSE has no vhadd/vmla: Shr and Mul map individually.
    assert!(src.contains("_mm_srai_epi32"), "{src}");
    assert!(src.contains("_mm_mullo_epi32"), "{src}");
}

#[test]
fn avx_float_fma_selected() {
    let p = HcgGen::new()
        .generate(&library::lowpass_model(64), Arch::Avx256)
        .expect("generates");
    let src = to_c_source(&p);
    assert!(
        src.contains("_mm256_fmadd_ps"),
        "AVX fuses the Mul+Add:\n{src}"
    );
}

#[test]
fn remainder_prologue_renders_before_loop() {
    let p = HcgGen::new()
        .generate(&library::fig4_model_sized(10), Arch::Neon128)
        .expect("generates");
    let src = to_c_source(&p);
    let loop_pos = src
        .find("for (size_t i = 2; i < 10; i += 4)")
        .expect("offset loop");
    let remainder_pos = src.find("Sub[0] = b[0] - c[0];").expect("scalar remainder");
    assert!(
        remainder_pos < loop_pos,
        "remainder code precedes the SIMD loop (Algorithm 2 line 27):\n{src}"
    );
}
