//! Lint gate: the static analyzer runs end-to-end over the checked-in
//! example model files and over every program the generator fleet produces.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Clean fleet** — every bundled model lints clean, and HCG plus both
//!    baselines generate programs with zero error-severity diagnostics on
//!    every architecture.
//! 2. **Exhaustive collection** — deliberately malformed inputs produce
//!    *all* of their expected diagnostics in a single analyzer run, not
//!    just the first.

use hcg::analysis::{lint_model, lint_model_file, lint_program, LintCode, Severity};
use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{CodeGenerator, HcgGen};
use hcg::isa::Arch;
use hcg::kernels::CodeLibrary;
use hcg::model::op::ElemOp;
use hcg::model::parser::model_from_xml;
use hcg::model::{library, Model};

fn example_model_files() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/models");
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("examples/models exists")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            (path.extension().is_some_and(|x| x == "xml")).then(|| {
                (
                    path.display().to_string(),
                    std::fs::read_to_string(&path).expect("readable model file"),
                )
            })
        })
        .collect();
    files.sort();
    assert!(files.len() >= 8, "example models missing: {files:?}");
    files
}

#[test]
fn example_model_files_lint_clean() {
    for (path, text) in example_model_files() {
        let report = lint_model_file(&text);
        assert!(
            !report.has_errors(),
            "{path} should lint clean:\n{}",
            report.render()
        );
    }
}

fn fleet() -> Vec<Box<dyn CodeGenerator>> {
    vec![
        Box::new(HcgGen::new()),
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
    ]
}

fn assert_fleet_clean(model: &Model, label: &str) {
    let lib = CodeLibrary::new();
    for generator in fleet() {
        for arch in [Arch::Neon128, Arch::Avx256] {
            let prog = generator
                .generate(model, arch)
                .unwrap_or_else(|e| panic!("{} on {label}/{arch}: {e}", generator.name()));
            let report = lint_program(&prog, &lib);
            assert_eq!(
                report.error_count(),
                0,
                "{} on {label}/{arch} emitted a program with lint errors:\n{}",
                generator.name(),
                report.render()
            );
        }
    }
}

#[test]
fn clean_fleet_over_example_files() {
    for (path, text) in example_model_files() {
        let model = model_from_xml(&text).expect("example parses");
        assert_fleet_clean(&model, &path);
    }
}

#[test]
fn clean_fleet_over_library_models() {
    let models: Vec<Model> = library::paper_benchmarks()
        .into_iter()
        .chain([
            library::fig2_model(),
            library::fig4_model(),
            library::switch_model(128),
            library::mixed_width_model(128),
            library::matrix_pipeline_model(8),
        ])
        .collect();
    for model in models {
        let report = lint_model(&model);
        assert!(
            !report.has_errors(),
            "{} should lint clean:\n{}",
            model.name,
            report.render()
        );
        let label = model.name.clone();
        assert_fleet_clean(&model, &label);
    }
}

#[test]
fn malformed_model_yields_all_diagnostics_in_one_run() {
    // An algebraic loop (Add <-> Mul with no UnitDelay) AND a
    // dtype-mismatched connection (f32 wire into an i32 wire's Add) must
    // both be reported by a single run.
    let text = r#"<model name="broken">
        <actor id="0" name="x" kind="Inport"><param name="type">i32*16</param></actor>
        <actor id="1" name="f" kind="Inport"><param name="type">f32*16</param></actor>
        <actor id="2" name="sum" kind="Add"/>
        <actor id="3" name="prod" kind="Mul"/>
        <actor id="4" name="y" kind="Outport"/>
        <connect from="0:0" to="2:0"/>
        <connect from="1:0" to="3:0"/>
        <connect from="2:0" to="3:1"/>
        <connect from="3:0" to="2:1"/>
        <connect from="3:0" to="4:0"/>
    </model>"#;
    let report = lint_model_file(text);
    assert!(
        report.has(LintCode::AlgebraicLoop),
        "missing algebraic-loop finding:\n{}",
        report.render()
    );
    assert!(
        report.has(LintCode::DtypeMismatch),
        "missing dtype-mismatch finding:\n{}",
        report.render()
    );
    let rendered = report.render();
    assert!(rendered.contains("model/algebraic-loop"), "{rendered}");
    assert!(rendered.contains("model/dtype-mismatch"), "{rendered}");
    // The strict parser would have stopped long before seeing both.
    assert!(report.error_count() >= 2, "{rendered}");
}

#[test]
fn malformed_program_yields_all_diagnostics_in_one_run() {
    use hcg::model::{DataType, SignalType};
    use hcg::vm::{BufferKind, ElemRef, IndexExpr, Program, ScalarOp, Stmt};

    let ty = SignalType::vector(DataType::I32, 8);
    let mut prog = Program::new("broken", "hand", Arch::Neon128);
    let input = prog.add_buffer("in", ty, BufferKind::Input, None);
    let tmp = prog.add_buffer("tmp", ty, BufferKind::Temp, None);
    let out = prog.add_buffer("out", ty, BufferKind::Output, None);
    let reg = prog.add_reg(DataType::I32, 4);
    // Uninitialized vector register read.
    prog.body.push(Stmt::VStore {
        buf: out,
        index: IndexExpr::Const(0),
        reg,
    });
    let elementwise = |dst, src| Stmt::Loop {
        start: 0,
        end: 8,
        step: 1,
        body: vec![Stmt::Scalar {
            op: ScalarOp::Elem(ElemOp::Abs),
            dst: ElemRef {
                buf: dst,
                index: IndexExpr::Loop(0),
            },
            srcs: vec![ElemRef {
                buf: src,
                index: IndexExpr::Loop(0),
            }],
        }],
    };
    // Dead store: tmp written, overwritten with no read in between.
    prog.body.push(elementwise(tmp, input));
    prog.body.push(elementwise(tmp, input));
    prog.body.push(elementwise(out, tmp));

    let report = lint_program(&prog, &CodeLibrary::new());
    assert!(
        report.has(LintCode::UninitializedRegister),
        "missing uninitialized-register finding:\n{}",
        report.render()
    );
    assert!(
        report.has(LintCode::DeadStore),
        "missing dead-store finding:\n{}",
        report.render()
    );
    let rendered = report.render();
    assert!(
        rendered.contains("program/uninitialized-register"),
        "{rendered}"
    );
    assert!(rendered.contains("program/dead-store"), "{rendered}");
}

#[test]
fn severities_are_stable() {
    // The gate relies on the error/warning split: structural breakage is an
    // error, code-quality findings are warnings.
    assert_eq!(LintCode::AlgebraicLoop.severity(), Severity::Error);
    assert_eq!(LintCode::DtypeMismatch.severity(), Severity::Error);
    assert_eq!(LintCode::UninitializedRegister.severity(), Severity::Error);
    assert_eq!(LintCode::DeadStore.severity(), Severity::Warning);
    assert_eq!(LintCode::UnreachableActor.severity(), Severity::Warning);
    assert_eq!(LintCode::NeverReadBuffer.severity(), Severity::Warning);
    // Range lints (raised by `hcg-verify`'s abstract interpreter) are
    // advisory except the structural lane check.
    assert_eq!(LintCode::PossibleOverflow.severity(), Severity::Warning);
    assert_eq!(LintCode::PossibleDivByZero.severity(), Severity::Warning);
    assert_eq!(LintCode::LaneOutOfRange.severity(), Severity::Error);
}

/// Build a looped `dst[i] = op(a[i], b[i])` program over i8 buffers — small
/// enough that the interval analyzer can be pushed over the dtype edge.
fn range_prog(op: ElemOp) -> hcg::vm::Program {
    use hcg::model::{DataType, SignalType};
    use hcg::vm::{BufferKind, ElemRef, IndexExpr, Program, ScalarOp, Stmt};

    let ty = SignalType::vector(DataType::I8, 8);
    let mut prog = Program::new("range-golden", "hand", Arch::Neon128);
    let a = prog.add_buffer("a", ty, BufferKind::Input, None);
    let b = prog.add_buffer("b", ty, BufferKind::Input, None);
    let out = prog.add_buffer("out", ty, BufferKind::Output, None);
    prog.body.push(Stmt::Loop {
        start: 0,
        end: 8,
        step: 1,
        body: vec![Stmt::Scalar {
            op: ScalarOp::Elem(op),
            dst: ElemRef {
                buf: out,
                index: IndexExpr::Loop(0),
            },
            srcs: vec![
                ElemRef {
                    buf: a,
                    index: IndexExpr::Loop(0),
                },
                ElemRef {
                    buf: b,
                    index: IndexExpr::Loop(0),
                },
            ],
        }],
    });
    prog
}

#[test]
fn range_lints_flag_overflow_and_div_by_zero() {
    use hcg::verify::range_lint;

    // i8 + i8 can escape [-128, 127]: PossibleOverflow, as a warning.
    let report = range_lint(&range_prog(ElemOp::Add));
    assert!(
        report.has(LintCode::PossibleOverflow),
        "missing overflow finding:\n{}",
        report.render()
    );
    assert_eq!(report.error_count(), 0, "{}", report.render());
    assert!(report.render().contains("program/possible-overflow"));

    // A full-range divisor contains zero: PossibleDivByZero.
    let report = range_lint(&range_prog(ElemOp::Div));
    assert!(
        report.has(LintCode::PossibleDivByZero),
        "missing div-by-zero finding:\n{}",
        report.render()
    );
    assert!(report.render().contains("program/possible-div-by-zero"));

    // Min never widens the interval: the same shape lints clean.
    let report = range_lint(&range_prog(ElemOp::Min));
    assert!(
        report.diagnostics.is_empty(),
        "unexpected findings:\n{}",
        report.render()
    );
}

#[test]
fn range_lints_flag_lane_out_of_range() {
    use hcg::isa::{Pattern, PatternArg};
    use hcg::model::{DataType, SignalType};
    use hcg::verify::range_lint;
    use hcg::vm::{BufferKind, IndexExpr, Program, Stmt};

    let ty = SignalType::vector(DataType::F32, 4);
    let mut prog = Program::new("lane-golden", "hand", Arch::Neon128);
    let a = prog.add_buffer("a", ty, BufferKind::Input, None);
    let out = prog.add_buffer("out", ty, BufferKind::Output, None);
    let narrow = prog.add_reg(DataType::F32, 2);
    let wide = prog.add_reg(DataType::F32, 4);
    prog.body.push(Stmt::VLoad {
        reg: narrow,
        buf: a,
        index: IndexExpr::Const(0),
    });
    // A 4-lane op over a 2-lane source register reads lanes that do not
    // exist: a structural error.
    prog.body.push(Stmt::VOp {
        instr: "vabs".to_owned(),
        pattern: Pattern {
            op: ElemOp::Abs,
            args: vec![PatternArg::Input(0)],
        },
        cost: 1,
        dst: wide,
        srcs: vec![narrow],
        code: String::new(),
    });
    prog.body.push(Stmt::VStore {
        buf: out,
        index: IndexExpr::Const(0),
        reg: wide,
    });

    let report = range_lint(&prog);
    assert!(
        report.has(LintCode::LaneOutOfRange),
        "missing lane finding:\n{}",
        report.render()
    );
    assert!(
        report.has_errors(),
        "lane check is an error:\n{}",
        report.render()
    );
    assert!(report.render().contains("program/lane-out-of-range"));
}
