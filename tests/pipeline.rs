//! End-to-end pipeline integration tests: textual model file → parse →
//! type-check → schedule → code generation (all three generators) → VM
//! execution → comparison against the golden reference.

use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{CodeGenerator, HcgGen, Reference};
use hcg::isa::Arch;
use hcg::kernels::CodeLibrary;
use hcg::model::parser::{model_from_xml, model_to_xml};
use hcg::model::{library, ActorKind, Model, Tensor};
use hcg::vm::Machine;
use std::collections::BTreeMap;

fn generators() -> Vec<Box<dyn CodeGenerator>> {
    vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(HcgGen::new()),
    ]
}

fn deterministic_inputs(model: &Model, step: usize) -> BTreeMap<String, Tensor> {
    let types = model.infer_types().expect("valid model");
    let mut out = BTreeMap::new();
    for a in &model.actors {
        if a.kind != ActorKind::Inport {
            continue;
        }
        let ty = types.output(a.id, 0);
        let t = if ty.dtype.is_float() {
            let vals: Vec<f64> = (0..ty.len())
                .map(|i| ((i + step * 31 + a.id.0 * 7) as f64 * 0.37).sin())
                .collect();
            Tensor::from_f64(ty, vals).expect("sized")
        } else {
            let vals: Vec<i64> = (0..ty.len())
                .map(|i| ((i * 13 + step * 7 + a.id.0) % 200) as i64 - 100)
                .collect();
            Tensor::from_i64(ty, vals).expect("sized")
        };
        out.insert(a.name.clone(), t);
    }
    out
}

/// Run a model through the full pipeline on one arch and asserts agreement
/// with the reference for several steps (delays make steps interdependent).
fn assert_pipeline(model: &Model, arch: Arch, steps: usize, tol: f64) {
    // Start from the textual model format, like a real deployment would.
    let text = model_to_xml(model);
    let parsed = model_from_xml(&text).expect("model file parses");
    assert_eq!(&parsed, model);

    let lib = CodeLibrary::new();
    let mut reference = Reference::new(&parsed).expect("reference builds");
    let programs: Vec<_> = generators()
        .iter()
        .map(|g| g.generate(&parsed, arch).expect("generates"))
        .collect();
    let mut machines: Vec<_> = programs.iter().map(|p| Machine::new(p, &lib)).collect();

    for step in 0..steps {
        let inputs = deterministic_inputs(&parsed, step);
        let want = reference.step(&inputs).expect("reference step");
        for (m, p) in machines.iter_mut().zip(&programs) {
            for (name, value) in &inputs {
                m.set_input(name, value).expect("set input");
            }
            m.step().expect("program step");
            for (name, expected) in &want {
                let got = m.read_buffer(name).expect("output");
                let scale = expected
                    .as_f64()
                    .iter()
                    .fold(1.0f64, |acc, v| acc.max(v.abs()));
                assert!(
                    got.max_abs_diff(expected) / scale <= tol,
                    "{} on {} step {}: output {} differs by {}",
                    p.generator,
                    arch,
                    step,
                    name,
                    got.max_abs_diff(expected)
                );
            }
        }
    }
}

#[test]
fn fft_benchmark_pipeline() {
    assert_pipeline(&library::fft_model(256), Arch::Neon128, 2, 1e-6);
}

#[test]
fn dct_benchmark_pipeline() {
    assert_pipeline(&library::dct_model(128), Arch::Avx256, 2, 1e-6);
}

#[test]
fn conv_benchmark_pipeline() {
    assert_pipeline(&library::conv_model(200, 16), Arch::Sse128, 2, 1e-6);
}

#[test]
fn highpass_pipeline_all_archs() {
    for arch in Arch::ALL {
        assert_pipeline(&library::highpass_model(100), arch, 5, 1e-5);
    }
}

#[test]
fn lowpass_pipeline_all_archs() {
    for arch in Arch::ALL {
        assert_pipeline(&library::lowpass_model(64), arch, 5, 1e-5);
    }
}

#[test]
fn fir_pipeline_exact_integers() {
    for arch in Arch::ALL {
        assert_pipeline(&library::fir_model(100, 4), arch, 5, 0.0);
    }
}

#[test]
fn fig_models_pipeline() {
    assert_pipeline(&library::fig2_model(), Arch::Neon128, 3, 1e-5);
    assert_pipeline(&library::fig4_model(), Arch::Neon128, 3, 0.0);
    // Awkward lengths exercise the remainder path (offset != 0).
    for len in [5, 7, 9, 13, 21] {
        assert_pipeline(&library::fig4_model_sized(len), Arch::Neon128, 2, 0.0);
        assert_pipeline(&library::fig4_model_sized(len), Arch::Avx256, 2, 0.0);
    }
}

#[test]
fn paper_scale_benchmarks_run_everywhere() {
    // Full paper sizes, one step, every arch — the heavyweight smoke test.
    for model in library::paper_benchmarks() {
        for arch in Arch::ALL {
            assert_pipeline(&model, arch, 1, 1e-4);
        }
    }
}
