//! Integration tests pinning the paper's headline claims, one test per
//! claim, exercised through the public facade API.

use hcg::core::{emit::to_c_source, CodeGenerator, HcgGen, HcgOptions};
use hcg::isa::Arch;
use hcg::kernels::{Autotuner, CodeLibrary, KernelSize, Meter};
use hcg::model::{library, ActorKind, DataType};
use hcg::vm::{Compiler, CostModel, Stmt};

/// Paper Listing 1: the Fig. 4 model maps to exactly vsubq → vhaddq →
/// vmlaq on NEON, with four loads and two stores.
#[test]
fn listing1_instruction_selection() {
    let program = HcgGen::new()
        .generate(&library::fig4_model(), Arch::Neon128)
        .expect("generates");
    let instrs: Vec<&str> = program
        .body
        .iter()
        .filter_map(|s| match s {
            Stmt::VOp { instr, .. } => Some(instr.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(instrs, ["vsubq_s32", "vhaddq_s32", "vmlaq_s32"]);
    let stats = program.stmt_stats();
    assert_eq!(stats.vloads, 4, "a, b, c, d");
    assert_eq!(stats.vstores, 2, "Shr_out, Add_out");
    let src = to_c_source(&program);
    assert!(src.contains("vhaddq_s32(a_batch, Sub_batch)"));
    assert!(src.contains("vmlaq_s32(Sub_batch, Sub_batch, d_batch)"));
}

/// Paper §3: "the FFT actor … with 1024 floating point data as input will
/// be translated into the Radix-4 butterfly FFT implementation".
#[test]
fn fft_1024_selects_radix4() {
    let lib = CodeLibrary::new();
    let mut tuner = Autotuner::new(Meter::OpCount);
    let (kernel, _) = tuner
        .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![1024]))
        .expect("selects");
    assert_eq!(kernel.name, "radix4");
}

/// Paper Figure 1: no FFT implementation dominates at every input scale.
#[test]
fn figure1_no_dominant_implementation() {
    let lib = CodeLibrary::new();
    let mut tuner = Autotuner::new(Meter::OpCount);
    let mut winners = std::collections::BTreeSet::new();
    for n in [4usize, 16, 100, 1000, 1024, 2048] {
        let (k, _) = tuner
            .select(&lib, ActorKind::Fft, DataType::F32, &KernelSize(vec![n]))
            .expect("selects");
        winners.insert(k.name);
    }
    assert!(winners.len() >= 3, "winners: {winners:?}");
}

/// Paper Table 2 shape: HCG strictly fastest on all six benchmarks on the
/// ARM+GCC platform, with improvements in a plausible band around the
/// paper's 41–76 %.
#[test]
fn table2_shape() {
    let lib = CodeLibrary::new();
    let platform = CostModel::new(Arch::Neon128, Compiler::GccLike);
    let coder = hcg::baselines::SimulinkCoderGen::new();
    let dfsynth = hcg::baselines::DfSynthGen::new();
    let hcg_gen = HcgGen::new();
    for model in library::paper_benchmarks() {
        let c = platform.cycles(&coder.generate(&model, platform.arch).expect("gen"), &lib);
        let d = platform.cycles(&dfsynth.generate(&model, platform.arch).expect("gen"), &lib);
        let h = platform.cycles(&hcg_gen.generate(&model, platform.arch).expect("gen"), &lib);
        assert!(
            h < c && h < d,
            "{}: hcg={h} coder={c} dfsynth={d}",
            model.name
        );
        let improvement = (1.0 - h as f64 / c as f64) * 100.0;
        assert!(
            (30.0..90.0).contains(&improvement),
            "{}: {improvement:.1}%",
            model.name
        );
    }
}

/// Paper Figure 5: HCG fastest on every platform × model combination.
#[test]
fn figure5_hcg_always_wins() {
    let lib = CodeLibrary::new();
    let coder = hcg::baselines::SimulinkCoderGen::new();
    let dfsynth = hcg::baselines::DfSynthGen::new();
    let hcg_gen = HcgGen::new();
    for platform in hcg::vm::paper_platforms() {
        for model in library::paper_benchmarks() {
            let c = platform.cycles(&coder.generate(&model, platform.arch).expect("gen"), &lib);
            let d = platform.cycles(&dfsynth.generate(&model, platform.arch).expect("gen"), &lib);
            let h = platform.cycles(&hcg_gen.generate(&model, platform.arch).expect("gen"), &lib);
            assert!(
                h < c && h < d,
                "{} on {}+{}",
                model.name,
                platform.arch,
                platform.compiler
            );
        }
    }
}

/// Paper §4.2 / Figure 5(b): under a GCC-like compiler on Intel, the Coder
/// baseline's scattered SIMD is crippled by register↔memory traffic — its
/// gap to HCG widens versus the Clang-like compiler.
#[test]
fn figure5b_memory_latency_anomaly() {
    let lib = CodeLibrary::new();
    let coder = hcg::baselines::SimulinkCoderGen::new();
    let hcg_gen = HcgGen::new();
    let model = library::fir_model(1024, 4);
    let ratio = |compiler| {
        let platform = CostModel::new(Arch::Avx256, compiler);
        let c = platform.cycles(&coder.generate(&model, platform.arch).expect("gen"), &lib);
        let h = platform.cycles(&hcg_gen.generate(&model, platform.arch).expect("gen"), &lib);
        c as f64 / h as f64
    };
    assert!(ratio(Compiler::GccLike) > ratio(Compiler::ClangLike));
}

/// Paper §4.1: memory usage across generators within ±1 %.
#[test]
fn memory_usage_within_one_percent() {
    let coder = hcg::baselines::SimulinkCoderGen::new();
    let dfsynth = hcg::baselines::DfSynthGen::new();
    let hcg_gen = HcgGen::new();
    for model in library::paper_benchmarks() {
        let sizes = [
            coder
                .generate(&model, Arch::Neon128)
                .expect("gen")
                .memory_footprint(),
            dfsynth
                .generate(&model, Arch::Neon128)
                .expect("gen")
                .memory_footprint(),
            hcg_gen
                .generate(&model, Arch::Neon128)
                .expect("gen")
                .memory_footprint(),
        ];
        let max = *sizes.iter().max().expect("nonempty") as f64;
        let min = *sizes.iter().min().expect("nonempty") as f64;
        assert!((max - min) / max < 0.011, "{}: {sizes:?}", model.name);
    }
}

/// Paper §4.3: with one or two batch actors the SIMD gain shrinks; the
/// threshold option turns vectorisation off and the generator still
/// produces correct scalar code.
#[test]
fn threshold_discussion() {
    let model = library::single_batch_model(1024);
    let always = HcgGen::new()
        .generate(&model, Arch::Neon128)
        .expect("generates");
    let never = HcgGen::with_options(HcgOptions {
        simd_threshold: usize::MAX,
        ..HcgOptions::default()
    })
    .generate(&model, Arch::Neon128)
    .expect("generates");
    assert!(always.stmt_stats().vops > 0);
    assert_eq!(never.stmt_stats().vops, 0);
    // The single-actor SIMD advantage is small relative to a fused region:
    // loads+stores dominate single-op regions.
    let lib = CodeLibrary::new();
    let platform = CostModel::new(Arch::Neon128, Compiler::GccLike);
    let ratio = platform.cycles(&never, &lib) as f64 / platform.cycles(&always, &lib) as f64;
    assert!(ratio < 4.0, "single-actor SIMD gain is bounded: {ratio}");
}

/// Algorithm 1's history: re-synthesis of a known (type, size) pair is
/// served from the selection history.
#[test]
fn selection_history_quick_search() {
    let generator = HcgGen::new();
    let model = library::fft_model(512);
    generator.generate(&model, Arch::Neon128).expect("gen");
    assert_eq!(generator.history_len(), 1);
    // Export/import the history into a fresh generator.
    let text = generator.history_text();
    let restored = HcgGen::new();
    restored.load_history(&text);
    assert_eq!(restored.history_len(), 1);
}
