//! Cross-crate checks for the staged pipeline: one [`CompileSession`]
//! driving every generator × architecture combination must produce programs
//! byte-identical to independent `generate()` calls, while computing the
//! front-end artifacts (type map, schedule) exactly once per model.

use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
use hcg_core::emit::to_c_source;
use hcg_core::{CodeGenerator, CompileSession, HcgGen};
use hcg_isa::Arch;
use hcg_model::library;

const ARCHES: [Arch; 2] = [Arch::Neon128, Arch::Avx256];

fn test_models() -> Vec<hcg_model::Model> {
    vec![
        library::fig4_model(),
        library::lowpass_model(256),
        library::fft_model(256),
    ]
}

/// One session, 3 generators × 2 arches, versus six fully independent
/// `generate()` calls: the programs must match byte for byte (both the
/// in-memory form and the rendered C source).
#[test]
fn session_programs_are_byte_identical_to_direct_generation() {
    for model in test_models() {
        let session = CompileSession::new(model.clone());
        let coder = SimulinkCoderGen::new();
        let dfsynth = DfSynthGen::new();
        let hcg = HcgGen::new();
        let session_gens: [&dyn CodeGenerator; 3] = [&coder, &dfsynth, &hcg];
        for g in session_gens {
            for arch in ARCHES {
                let via_session = session.generate(g, arch).expect("session generates");
                // Fresh generator instances on the independent side: HcgGen's
                // Algorithm-1 history carries across generate calls, so a
                // shared instance would not be an independent run.
                let direct: Box<dyn CodeGenerator> = match g.name() {
                    "simulink-coder" => Box::new(SimulinkCoderGen::new()),
                    "dfsynth" => Box::new(DfSynthGen::new()),
                    _ => Box::new(HcgGen::new()),
                };
                let standalone = direct.generate(&model, arch).expect("direct generates");
                assert_eq!(
                    via_session,
                    standalone,
                    "{} on {arch} for {}: session and direct programs differ",
                    g.name(),
                    model.name
                );
                assert_eq!(
                    to_c_source(&via_session),
                    to_c_source(&standalone),
                    "{} on {arch} for {}: rendered C differs",
                    g.name(),
                    model.name
                );
            }
        }
    }
}

/// The front-end artifacts are computed exactly once per session no matter
/// how many generator × arch pipelines run (counters are thread-local, so
/// parallel test threads don't interfere).
#[test]
fn front_end_computed_exactly_once_per_session() {
    let session = CompileSession::new(library::fig4_model());
    let t0 = hcg_model::stats::type_inference_runs();
    let s0 = hcg_model::stats::schedule_runs();

    let coder = SimulinkCoderGen::new();
    let dfsynth = DfSynthGen::new();
    let hcg = HcgGen::new();
    let gens: [&dyn CodeGenerator; 3] = [&coder, &dfsynth, &hcg];
    for g in gens {
        for arch in ARCHES {
            session.generate(g, arch).expect("generates");
        }
    }

    assert_eq!(
        hcg_model::stats::type_inference_runs() - t0,
        1,
        "type inference must run once for six pipelines"
    );
    assert_eq!(
        hcg_model::stats::schedule_runs() - s0,
        1,
        "scheduling must run once for six pipelines"
    );
}

/// Stage reports carry the paper's pipeline structure and plausible
/// counters: HCG on the Figure 4 model forms one region and selects the
/// three instructions of Listing 1.
#[test]
fn stage_report_matches_figure4_walkthrough() {
    let session = CompileSession::new(library::fig4_model());
    let hcg = HcgGen::new();
    let (prog, report) = session
        .generate_with_report(&hcg, Arch::Neon128)
        .expect("generates");

    let names: Vec<&str> = report.stages.iter().map(|s| s.name).collect();
    assert_eq!(
        names,
        [
            "dispatch",
            "region-formation",
            "instruction-mapping",
            "compose"
        ]
    );
    let totals = report.totals();
    assert_eq!(totals.regions_formed, 1, "Fig. 4 has one batch region");
    assert_eq!(
        totals.instructions_selected, 3,
        "Listing 1 is three SIMD instructions"
    );
    assert_eq!(prog.stmt_stats().vops, 3);
    // Every stage recorded a lint verdict in debug builds; the rendered
    // table mentions each stage by name.
    let table = report.render();
    for name in names {
        assert!(table.contains(name), "render() must list stage {name}");
    }
}
